#include "regex/parser.hpp"

#include <algorithm>
#include <cctype>

namespace tulkun::regex {

bool SymbolSet::matches(Symbol s) const {
  const bool in = std::binary_search(syms.begin(), syms.end(), s);
  return negated ? !in : in;
}

SymbolSet SymbolSet::of(std::vector<Symbol> ss) {
  std::sort(ss.begin(), ss.end());
  ss.erase(std::unique(ss.begin(), ss.end()), ss.end());
  return SymbolSet{false, std::move(ss)};
}

SymbolSet SymbolSet::none_of(std::vector<Symbol> ss) {
  std::sort(ss.begin(), ss.end());
  ss.erase(std::unique(ss.begin(), ss.end()), ss.end());
  return SymbolSet{true, std::move(ss)};
}

Ast Ast::symbols_node(SymbolSet s) {
  Ast a;
  a.kind = AstKind::Symbols;
  a.symbols = std::move(s);
  return a;
}

Ast Ast::epsilon() { return Ast{}; }

Ast Ast::concat(std::vector<Ast> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  Ast a;
  a.kind = AstKind::Concat;
  a.children = std::move(parts);
  return a;
}

Ast Ast::alternation(std::vector<Ast> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  Ast a;
  a.kind = AstKind::Union;
  a.children = std::move(parts);
  return a;
}

namespace {
Ast unary(AstKind kind, Ast inner) {
  Ast a;
  a.kind = kind;
  a.children.push_back(std::move(inner));
  return a;
}
}  // namespace

Ast Ast::star(Ast inner) { return unary(AstKind::Star, std::move(inner)); }
Ast Ast::plus(Ast inner) { return unary(AstKind::Plus, std::move(inner)); }
Ast Ast::optional(Ast inner) {
  return unary(AstKind::Optional, std::move(inner));
}

namespace {

/// Recursive-descent parser over the grammar in the header.
class Parser {
 public:
  Parser(std::string_view text, const NameResolver& resolve)
      : text_(text), resolve_(resolve) {}

  Ast run() {
    Ast result = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input");
    }
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw RegexError(why + " at offset " + std::to_string(pos_) + " in '" +
                     std::string(text_) + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  [[nodiscard]] static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':';
  }

  std::string_view ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    if (pos_ == start) fail("expected device name");
    return text_.substr(start, pos_ - start);
  }

  Ast expr() {
    std::vector<Ast> alts;
    alts.push_back(concat());
    while (peek() == '|') {
      take();
      alts.push_back(concat());
    }
    return Ast::alternation(std::move(alts));
  }

  Ast concat() {
    std::vector<Ast> parts;
    while (true) {
      const char c = peek();
      if (c == '\0' || c == ')' || c == '|') break;
      parts.push_back(postfix());
    }
    if (parts.empty()) return Ast::epsilon();
    return Ast::concat(std::move(parts));
  }

  Ast postfix() {
    Ast a = atom();
    while (true) {
      const char c = peek();
      if (c == '*') {
        take();
        a = Ast::star(std::move(a));
      } else if (c == '+') {
        take();
        a = Ast::plus(std::move(a));
      } else if (c == '?') {
        take();
        a = Ast::optional(std::move(a));
      } else {
        break;
      }
    }
    return a;
  }

  Ast atom() {
    const char c = peek();
    if (c == '.') {
      take();
      return Ast::symbols_node(SymbolSet::any());
    }
    if (c == '(') {
      take();
      Ast inner = expr();
      if (take() != ')') fail("expected ')'");
      return inner;
    }
    if (c == '[') {
      take();
      bool negated = false;
      if (peek() == '^') {
        take();
        negated = true;
      }
      std::vector<Symbol> syms;
      while (peek() != ']') {
        syms.push_back(resolve_(ident()));
      }
      take();  // ']'
      if (syms.empty()) fail("empty character class");
      return Ast::symbols_node(negated ? SymbolSet::none_of(std::move(syms))
                                       : SymbolSet::of(std::move(syms)));
    }
    if (is_ident_char(c)) {
      return Ast::symbols_node(SymbolSet::single(resolve_(ident())));
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  const NameResolver& resolve_;
  std::size_t pos_ = 0;
};

}  // namespace

Ast parse(std::string_view text, const NameResolver& resolve) {
  return Parser(text, resolve).run();
}

}  // namespace tulkun::regex
