// Prometheus-style text exposition endpoint.
//
// Serves Registry::snapshot() as text/plain (version 0.0.4) over plain
// HTTP from a dedicated net::EventLoop thread. Scrape with
//   curl http://127.0.0.1:9464/metrics
// (any request path gets the same body). Designed for one scraper on a
// lab box, not for the open internet: connections are read until the
// first blank line, answered, and closed.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/event_loop.hpp"

namespace tulkun::obs {

class MetricsServer {
 public:
  MetricsServer() = default;
  ~MetricsServer();  // out of line: stops, and Conn is incomplete here

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Binds `listen_addr` ("ip:port"; port 0 picks a free one), spawns the
  /// serving thread. Throws Error on bind failure.
  void start(const std::string& listen_addr);

  /// Joins the serving thread and closes the listener. Idempotent.
  void stop();

  /// Resolved "ip:port" (useful with port 0). Empty before start().
  [[nodiscard]] std::string address() const { return address_; }

 private:
  struct Conn {
    std::string in;   // request bytes until the first blank line
    std::string out;  // rendered response
    std::size_t sent = 0;
  };

  void accept_ready();
  void conn_event(int fd, std::uint32_t events);
  void close_conn(int fd);
  [[nodiscard]] static std::string render_response();

  net::EventLoop loop_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::string address_;
  std::map<int, std::unique_ptr<Conn>> conns_;
  bool started_ = false;
};

/// Renders samples in Prometheus text format (names sanitized to
/// [a-zA-Z0-9_:]); exposed for tests.
[[nodiscard]] std::string render_prometheus_text();

}  // namespace tulkun::obs
