// Process-global metrics registry: the single source the Prometheus-style
// exposition endpoint (obs/metrics_server.hpp) and anything else that
// wants "the current counters" reads from.
//
// Two kinds of sources:
//  - named Counters: created once (mutex-guarded get-or-create), then
//    incremented lock-free from any thread;
//  - Providers: registered callbacks that append samples computed from
//    component-owned state (e.g. a transport summing its per-link atomic
//    counters). Components register in start() and hold the RAII handle,
//    so a snapshot never touches a destroyed component.
//
// snapshot() is race-free: counter values are atomic loads, provider
// callbacks run under the registry mutex, and samples sharing a name are
// summed (several transports in one process contribute to one series).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tulkun::obs {

/// Monotonic counter; increments are lock-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Record a high-water mark instead of accumulating.
  void max_of(std::uint64_t candidate) {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < candidate &&
           !v_.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// One exported series value.
struct Sample {
  std::string name;
  double value = 0.0;
};

class Registry {
 public:
  using Provider = std::function<void(std::vector<Sample>&)>;

  /// Deregisters its provider on destruction. Movable, not copyable.
  class ProviderHandle {
   public:
    ProviderHandle() = default;
    ProviderHandle(ProviderHandle&& o) noexcept
        : registry_(o.registry_), id_(o.id_) {
      o.registry_ = nullptr;
    }
    ProviderHandle& operator=(ProviderHandle&& o) noexcept {
      reset();
      registry_ = o.registry_;
      id_ = o.id_;
      o.registry_ = nullptr;
      return *this;
    }
    ~ProviderHandle() { reset(); }
    void reset();

   private:
    friend class Registry;
    ProviderHandle(Registry* r, std::uint64_t id) : registry_(r), id_(id) {}
    Registry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  static Registry& instance();

  /// Get-or-create; the returned reference stays valid for the process
  /// lifetime.
  Counter& counter(const std::string& name);

  [[nodiscard]] ProviderHandle add_provider(Provider fn);

  /// All counters plus all provider samples, same-name samples summed,
  /// sorted by name.
  [[nodiscard]] std::vector<Sample> snapshot() const;

 private:
  void remove_provider(std::uint64_t id);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::uint64_t, Provider> providers_;
  std::uint64_t next_provider_ = 1;
};

}  // namespace tulkun::obs
