// Flight-recorder tracing: per-thread lock-free overwrite-oldest ring
// buffers of fixed-size binary span/event records, written on the hot path
// with zero allocation, drained off-path into snapshots that the exporters
// (obs/export.hpp) turn into Chrome trace-event JSON.
//
// Hot-path cost model. A dormant TLK_SPAN is one relaxed atomic load. An
// active span is two steady-clock reads plus seven relaxed atomic stores
// into this thread's ring; name strings are interned once per call site
// (function-local static), so no hashing or allocation ever happens per
// record. When the build sets TULKUN_TRACE=OFF the macros expand to
// ((void)0) and the call sites vanish entirely.
//
// Concurrency. Each thread owns a private ring (SPSC: the owning thread
// writes, the drainer reads). Slots are arrays of std::atomic<uint64_t>:
// the writer stores the record words relaxed and then publishes with a
// release store of the head counter; the drainer acquire-loads the head,
// copies candidate slots with relaxed loads, and re-checks the head after
// an acquire fence — any slot the writer may have lapped during the copy
// is discarded (counted as dropped). Torn reads are therefore possible but
// harmless (the record is thrown away), and every access is atomic, so the
// scheme is exactly as clean under TSan as it is on hardware.
//
// Cross-process spans. Records carry a rank tag (which process/logical
// rank produced them) and a (trace_id, parent_span) context pair.
// DistributedRuntime propagates the pair inside dist_proto messages so a
// coordinator can stitch one causally-linked timeline across ranks; the
// inproc transport runs all "ranks" in one process, which is why the rank
// rides in the record (RankScope) rather than being process-global.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#ifndef TULKUN_TRACE_ENABLED
#define TULKUN_TRACE_ENABLED 1
#endif

namespace tulkun::obs {

enum class RecordKind : std::uint8_t { kSpan = 0, kEvent = 1 };

/// One fixed-size trace record; packs to kRecordWords u64 slot words.
struct Record {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t start_ns = 0;  // steady clock, process-local origin
  std::uint64_t dur_ns = 0;    // 0 for events
  std::uint32_t name_id = 0;   // intern() id, process-local
  std::uint32_t rank = 0;      // logical process rank (RankScope)
  RecordKind kind = RecordKind::kSpan;
  std::uint64_t arg = 0;  // user payload (batch size, bytes, phase, ...)
};

inline constexpr std::size_t kRecordWords = 7;

/// SPSC overwrite-oldest ring of Records over atomic u64 slots. One writer
/// (the owning thread), one reader at a time (the Recorder's drain, which
/// serializes readers under its registry mutex).
class Ring {
 public:
  /// `capacity` is rounded up to a power of two records.
  explicit Ring(std::size_t capacity);

  /// Lock-free, wait-free, zero-allocation; overwrites the oldest record
  /// when full. Owning thread only.
  void write(const Record& r);

  /// Copies every record still readable past `cursor` into `out` and
  /// returns the new cursor (== head). Records overwritten before they
  /// could be read — including ones lapped mid-copy — are added to
  /// `dropped`. Safe to call concurrently with write().
  std::uint64_t drain(std::uint64_t cursor, std::vector<Record>& out,
                      std::uint64_t& dropped) const;

  [[nodiscard]] std::size_t capacity() const { return cap_; }

 private:
  std::size_t cap_;  // records, power of two
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::atomic<std::uint64_t> head_{0};  // records ever written
};

// --- global recorder ------------------------------------------------------

/// Runtime master switch. Off by default; spans/events are dormant
/// (one relaxed load) until something — a --trace-out flag, a test —
/// flips it on.
extern std::atomic<bool> g_trace_enabled;

[[nodiscard]] inline bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on);

/// Whether TLK_SPAN/TLK_EVENT call sites were compiled in at all.
inline constexpr bool kTraceCompiledIn = TULKUN_TRACE_ENABLED != 0;

/// Interns `name`, returning a stable process-local id. Cheap enough for
/// function-local statics; not for per-record use.
[[nodiscard]] std::uint32_t intern(std::string_view name);

/// Default rank for records written by this process (forked device
/// processes set their rank once at startup).
void set_default_rank(std::uint32_t rank);
[[nodiscard]] std::uint32_t current_rank();

/// Labels the calling thread's ring in exported traces ("shard3", ...).
void set_thread_label(std::string label);

/// Scopes the calling thread to a logical rank: the inproc transport runs
/// several "ranks" on shared threads, so rank is adopted per handled
/// message rather than per process.
class RankScope {
 public:
  explicit RankScope(std::uint32_t rank);
  ~RankScope();
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  std::uint32_t prev_;
};

// --- trace context --------------------------------------------------------

/// The causal position new spans attach under: `trace_id` names the whole
/// distributed operation, `span_id` the would-be parent span.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

[[nodiscard]] TraceContext current_context();
/// Fresh process-unique ids (rank and thread tagged, never 0).
[[nodiscard]] std::uint64_t new_trace_id();
[[nodiscard]] std::uint64_t new_span_id();

/// Installs `ctx` as the calling thread's current context (e.g. adopted
/// from an incoming dist_proto message) and restores on destruction.
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

// --- span / event emission ------------------------------------------------

/// RAII span: records [construction, destruction) into this thread's ring.
/// Nested spans parent automatically through the thread's TraceContext.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::uint32_t name_id, std::uint64_t arg = 0) {
    if (trace_enabled()) begin(name_id, arg);
  }
  ~ScopedSpan() {
    if (active_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Payload recorded at span end (e.g. a batch size known only later).
  void set_arg(std::uint64_t arg) {
    if (active_) arg_ = arg;
  }

 private:
  void begin(std::uint32_t name_id, std::uint64_t arg);
  void end();

  bool active_ = false;
  std::uint32_t name_id_ = 0;
  std::uint32_t rank_ = 0;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t span_id_ = 0;
  TraceContext prev_;
};

/// Instant event under the current context.
void emit_event(std::uint32_t name_id, std::uint64_t arg = 0);

// --- draining -------------------------------------------------------------

/// Everything one thread's ring yielded in a drain.
struct ThreadTrace {
  std::uint32_t thread_index = 0;
  std::string label;
  std::uint64_t dropped = 0;
  std::vector<Record> records;
};

/// A drained trace: per-thread record runs plus the intern table that
/// name_id values index (per process — the exporter remaps on merge).
struct TraceSnapshot {
  std::vector<std::string> names;
  std::vector<ThreadTrace> threads;

  [[nodiscard]] std::size_t record_count() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.records.size();
    return n;
  }
};

/// Drains every registered thread ring (consuming: a second call returns
/// only records written since). Safe to call while writers are active;
/// records landing mid-drain surface in the next drain.
[[nodiscard]] TraceSnapshot drain_snapshot();

/// Appends `more`'s thread runs into `into` (same process: the longer
/// intern table wins, ids are stable).
void merge_snapshot(TraceSnapshot& into, TraceSnapshot&& more);

}  // namespace tulkun::obs

// --- macros ----------------------------------------------------------------
//
// TLK_SPAN("planner.dfa");               scoped span, zero-arg
// TLK_SPAN_ARG("runtime.batch", n);      scoped span carrying a u64
// TLK_EVENT("net.redial");               instant event
// TLK_EVENT_ARG("net.tx_frame", bytes);  instant event carrying a u64
//
// Names are interned once per call site via a function-local static.

#if TULKUN_TRACE_ENABLED

#define TLK_OBS_CAT2_(a, b) a##b
#define TLK_OBS_CAT_(a, b) TLK_OBS_CAT2_(a, b)

#define TLK_SPAN(name)                                            \
  static const std::uint32_t TLK_OBS_CAT_(tlk_obs_name_,         \
                                          __LINE__) =            \
      ::tulkun::obs::intern(name);                                \
  ::tulkun::obs::ScopedSpan TLK_OBS_CAT_(tlk_obs_span_, __LINE__)( \
      TLK_OBS_CAT_(tlk_obs_name_, __LINE__))

#define TLK_SPAN_ARG(name, arg)                                   \
  static const std::uint32_t TLK_OBS_CAT_(tlk_obs_name_,         \
                                          __LINE__) =            \
      ::tulkun::obs::intern(name);                                \
  ::tulkun::obs::ScopedSpan TLK_OBS_CAT_(tlk_obs_span_, __LINE__)( \
      TLK_OBS_CAT_(tlk_obs_name_, __LINE__),                      \
      static_cast<std::uint64_t>(arg))

#define TLK_EVENT(name)                                                 \
  do {                                                                  \
    if (::tulkun::obs::trace_enabled()) {                               \
      static const std::uint32_t tlk_obs_ev_name_ =                     \
          ::tulkun::obs::intern(name);                                  \
      ::tulkun::obs::emit_event(tlk_obs_ev_name_);                      \
    }                                                                   \
  } while (0)

#define TLK_EVENT_ARG(name, arg)                                        \
  do {                                                                  \
    if (::tulkun::obs::trace_enabled()) {                               \
      static const std::uint32_t tlk_obs_ev_name_ =                     \
          ::tulkun::obs::intern(name);                                  \
      ::tulkun::obs::emit_event(tlk_obs_ev_name_,                       \
                                static_cast<std::uint64_t>(arg));       \
    }                                                                   \
  } while (0)

#else  // TULKUN_TRACE_ENABLED == 0: call sites compile to nothing.

#define TLK_SPAN(name) ((void)0)
#define TLK_SPAN_ARG(name, arg) ((void)0)
#define TLK_EVENT(name) ((void)0)
#define TLK_EVENT_ARG(name, arg) ((void)0)

#endif  // TULKUN_TRACE_ENABLED
