#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "core/error.hpp"

namespace tulkun::obs {

namespace {

constexpr std::uint32_t kMagic = 0x53424f54u;  // "TOBS"
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return out;
  }
  /// Each of `n` declared elements occupies at least `min_elem_bytes`, so a
  /// hostile count cannot trigger a giant reserve before the data runs out.
  std::uint32_t count(std::uint32_t n, std::size_t min_elem_bytes) const {
    if (n > (bytes_.size() - pos_) / min_elem_bytes) {
      throw Error("trace decode: declared count exceeds buffer");
    }
    return n;
  }
  void done() const {
    if (pos_ != bytes_.size()) throw Error("trace decode: trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw Error("trace decode: truncated");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// Bytes every serialized record occupies (5 u64 + 2 u32 + u8 + u64).
constexpr std::size_t kRecordBytes = 5 * 8 + 2 * 4 + 1 + 8;

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

std::vector<std::uint8_t> serialize_trace(const TraceSnapshot& snap) {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(snap.names.size()));
  for (const auto& n : snap.names) w.str(n);
  w.u32(static_cast<std::uint32_t>(snap.threads.size()));
  for (const auto& t : snap.threads) {
    w.u32(t.thread_index);
    w.str(t.label);
    w.u64(t.dropped);
    w.u32(static_cast<std::uint32_t>(t.records.size()));
    for (const auto& r : t.records) {
      w.u64(r.trace_id);
      w.u64(r.span_id);
      w.u64(r.parent_span);
      w.u64(r.start_ns);
      w.u64(r.dur_ns);
      w.u32(r.name_id);
      w.u32(r.rank);
      w.u8(static_cast<std::uint8_t>(r.kind));
      w.u64(r.arg);
    }
  }
  return w.take();
}

TraceSnapshot deserialize_trace(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (r.u32() != kMagic) throw Error("trace decode: bad magic");
  if (r.u32() != kVersion) throw Error("trace decode: unknown version");
  TraceSnapshot out;
  const std::uint32_t n_names = r.count(r.u32(), 4);
  out.names.reserve(n_names);
  for (std::uint32_t i = 0; i < n_names; ++i) out.names.push_back(r.str());
  const std::uint32_t n_threads = r.count(r.u32(), 4 + 4 + 8 + 4);
  out.threads.reserve(n_threads);
  for (std::uint32_t i = 0; i < n_threads; ++i) {
    ThreadTrace t;
    t.thread_index = r.u32();
    t.label = r.str();
    t.dropped = r.u64();
    const std::uint32_t n_records = r.count(r.u32(), kRecordBytes);
    t.records.reserve(n_records);
    for (std::uint32_t k = 0; k < n_records; ++k) {
      Record rec;
      rec.trace_id = r.u64();
      rec.span_id = r.u64();
      rec.parent_span = r.u64();
      rec.start_ns = r.u64();
      rec.dur_ns = r.u64();
      rec.name_id = r.u32();
      rec.rank = r.u32();
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(RecordKind::kEvent)) {
        throw Error("trace decode: bad record kind");
      }
      rec.kind = static_cast<RecordKind>(kind);
      rec.arg = r.u64();
      if (rec.name_id >= out.names.size()) {
        throw Error("trace decode: name id out of range");
      }
      t.records.push_back(rec);
    }
    out.threads.push_back(std::move(t));
  }
  r.done();
  return out;
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceSnapshot>& snaps) {
  bool first = true;
  const auto emit_prefix = [&] {
    os << (first ? "" : ",\n") << "  ";
    first = false;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Track metadata: a process per rank, a thread per recorder ring.
  std::set<std::uint32_t> pids;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> tids;
  // Cross-rank flow endpoints: span_id -> (pid, tid, end ts).
  struct SpanLoc {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t end_ns = 0;
  };
  std::map<std::uint64_t, SpanLoc> span_at;
  for (const auto& snap : snaps) {
    for (const auto& t : snap.threads) {
      for (const auto& r : t.records) {
        pids.insert(r.rank);
        auto& label = tids[{r.rank, t.thread_index}];
        if (label.empty()) label = t.label;
        if (r.kind == RecordKind::kSpan) {
          span_at[r.span_id] = {r.rank, t.thread_index,
                                r.start_ns + r.dur_ns};
        }
      }
    }
  }
  for (const std::uint32_t pid : pids) {
    emit_prefix();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << pid << "\"}}";
  }
  for (const auto& [key, label] : tids) {
    emit_prefix();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"";
    json_escape(os, label);
    os << "\"}}";
  }

  char hex[32];
  const auto hex_id = [&](std::uint64_t v) -> const char* {
    std::snprintf(hex, sizeof(hex), "0x%llx",
                  static_cast<unsigned long long>(v));
    return hex;
  };

  for (const auto& snap : snaps) {
    for (const auto& t : snap.threads) {
      for (const auto& r : t.records) {
        const std::string& name =
            r.name_id < snap.names.size() ? snap.names[r.name_id] : "?";
        emit_prefix();
        if (r.kind == RecordKind::kSpan) {
          os << "{\"ph\":\"X\",\"name\":\"";
          json_escape(os, name);
          os << "\",\"cat\":\"tulkun\",\"pid\":" << r.rank
             << ",\"tid\":" << t.thread_index << ",\"ts\":" << us(r.start_ns)
             << ",\"dur\":" << us(r.dur_ns) << ",\"args\":{\"arg\":" << r.arg
             << ",\"trace\":\"" << hex_id(r.trace_id) << "\",\"span\":\""
             << hex_id(r.span_id) << "\"}}";
        } else {
          os << "{\"ph\":\"i\",\"name\":\"";
          json_escape(os, name);
          os << "\",\"cat\":\"tulkun\",\"s\":\"t\",\"pid\":" << r.rank
             << ",\"tid\":" << t.thread_index << ",\"ts\":" << us(r.start_ns)
             << ",\"args\":{\"arg\":" << r.arg << "}}";
        }
        // A parent on another rank: draw the causal arrow explicitly (same
        // rank nests visually, no arrow needed).
        if (r.kind == RecordKind::kSpan && r.parent_span != 0) {
          const auto it = span_at.find(r.parent_span);
          if (it != span_at.end() && it->second.pid != r.rank) {
            emit_prefix();
            os << "{\"ph\":\"s\",\"name\":\"ctx\",\"cat\":\"tulkun\",\"id\":\""
               << hex_id(r.span_id) << "\",\"pid\":" << it->second.pid
               << ",\"tid\":" << it->second.tid
               << ",\"ts\":" << us(it->second.end_ns) << "}";
            emit_prefix();
            os << "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"ctx\",\"cat\":"
                  "\"tulkun\",\"id\":\""
               << hex_id(r.span_id) << "\",\"pid\":" << r.rank
             << ",\"tid\":" << t.thread_index << ",\"ts\":" << us(r.start_ns)
               << "}";
          }
        }
      }
    }
  }
  os << "\n]}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceSnapshot>& snaps) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write trace file " + path);
  write_chrome_trace(out, snaps);
}

}  // namespace tulkun::obs
