#include "obs/registry.hpp"

#include <algorithm>

namespace tulkun::obs {

void Registry::ProviderHandle::reset() {
  if (registry_ != nullptr) {
    registry_->remove_provider(id_);
    registry_ = nullptr;
  }
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Registry::ProviderHandle Registry::add_provider(Provider fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_provider_++;
  providers_.emplace(id, std::move(fn));
  return ProviderHandle(this, id);
}

void Registry::remove_provider(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(id);
}

std::vector<Sample> Registry::snapshot() const {
  std::vector<Sample> raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      raw.push_back({name, static_cast<double>(c->value())});
    }
    for (const auto& [id, fn] : providers_) fn(raw);
  }
  std::sort(raw.begin(), raw.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  // Several components may export the same series (e.g. two transports in
  // one process): one summed sample per name.
  std::vector<Sample> out;
  for (auto& s : raw) {
    if (!out.empty() && out.back().name == s.name) {
      out.back().value += s.value;
    } else {
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace tulkun::obs
