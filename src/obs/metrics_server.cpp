#include "obs/metrics_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "core/error.hpp"
#include "obs/registry.hpp"

namespace tulkun::obs {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Error(std::string("obs: fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
}

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string render_prometheus_text() {
  std::ostringstream body;
  for (const auto& s : Registry::instance().snapshot()) {
    const std::string name = sanitize(s.name);
    body << "# TYPE " << name << " counter\n";
    body << name << " " << s.value << "\n";
  }
  return body.str();
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::start(const std::string& listen_addr) {
  if (started_) throw Error("obs: metrics server already started");

  const auto colon = listen_addr.rfind(':');
  if (colon == std::string::npos) {
    throw Error("obs: metrics address must be ip:port, got " + listen_addr);
  }
  const std::string host = listen_addr.substr(0, colon);
  const int port = std::stoi(listen_addr.substr(colon + 1));

  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    throw Error("obs: bad metrics address " + listen_addr);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("obs: socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("obs: bind " + listen_addr + ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(std::string("obs: listen: ") + std::strerror(err));
  }
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
    address_ = std::string(ip) + ":" + std::to_string(ntohs(bound.sin_port));
  } else {
    address_ = listen_addr;
  }

  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { accept_ready(); });
  started_ = true;
  thread_ = std::thread([this] { loop_.run(); });
}

void MetricsServer::stop() {
  if (!started_) return;
  started_ = false;
  loop_.stop();
  thread_.join();
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure; listener stays armed
    }
    conns_.emplace(fd, std::make_unique<Conn>());
    loop_.add_fd(fd, EPOLLIN,
                 [this, fd](std::uint32_t ev) { conn_event(fd, ev); });
  }
}

void MetricsServer::conn_event(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(fd);
    return;
  }

  if ((events & EPOLLIN) != 0 && c.out.empty()) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        if (c.in.size() > 16 * 1024) {  // not a plausible scrape request
          close_conn(fd);
          return;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(fd);  // EOF before a full request, or a hard error
      return;
    }
    // End of request headers: respond to anything that looks like HTTP.
    if (c.in.find("\r\n\r\n") != std::string::npos ||
        c.in.find("\n\n") != std::string::npos) {
      c.out = render_response();
      loop_.mod_fd(fd, EPOLLOUT);
    }
  }

  if ((events & EPOLLOUT) != 0 && !c.out.empty()) {
    while (c.sent < c.out.size()) {
      const ssize_t n =
          ::write(fd, c.out.data() + c.sent, c.out.size() - c.sent);
      if (n > 0) {
        c.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      break;  // hard error: give up on this connection
    }
    close_conn(fd);
  }
}

void MetricsServer::close_conn(int fd) {
  loop_.del_fd(fd);
  ::close(fd);
  conns_.erase(fd);
}

std::string MetricsServer::render_response() {
  const std::string body = render_prometheus_text();
  std::ostringstream resp;
  resp << "HTTP/1.0 200 OK\r\n"
       << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
  return resp.str();
}

}  // namespace tulkun::obs
