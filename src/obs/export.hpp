// Trace exporters: a compact binary form for shipping per-rank flight
// recorder snapshots to the coordinator over dist_proto, and a Chrome
// trace-event JSON writer (loads in Perfetto / chrome://tracing) that
// merges snapshots from many ranks into one causally-linked timeline —
// one process track per rank, one thread track per recorder ring, flow
// arrows between spans whose parent lives on another rank.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tulkun::obs {

/// Binary wire form of a snapshot (intern table + thread record runs).
[[nodiscard]] std::vector<std::uint8_t> serialize_trace(
    const TraceSnapshot& snap);

/// Inverse of serialize_trace. Throws Error on malformed input (truncated,
/// bad magic, counts exceeding the buffer) — never reads past `bytes`.
[[nodiscard]] TraceSnapshot deserialize_trace(
    std::span<const std::uint8_t> bytes);

/// Writes the merged snapshots as Chrome trace-event JSON. Timestamps stay
/// on each process's steady clock (tracks from different ranks may be
/// offset); causality is carried by the flow arrows, not the clock.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceSnapshot>& snaps);

/// write_chrome_trace into `path`; throws Error if the file cannot be
/// created.
void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceSnapshot>& snaps);

}  // namespace tulkun::obs
