#include "obs/trace.hpp"

#include <chrono>
#include <map>
#include <mutex>

namespace tulkun::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// --- Ring -------------------------------------------------------------------

Ring::Ring(std::size_t capacity)
    : cap_(round_pow2(capacity == 0 ? 1 : capacity)),
      slots_(new std::atomic<std::uint64_t>[cap_ * kRecordWords]) {
  for (std::size_t i = 0; i < cap_ * kRecordWords; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

void Ring::write(const Record& r) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const std::size_t base = (h & (cap_ - 1)) * kRecordWords;
  const auto store = [&](std::size_t i, std::uint64_t v) {
    slots_[base + i].store(v, std::memory_order_relaxed);
  };
  store(0, r.trace_id);
  store(1, r.span_id);
  store(2, r.parent_span);
  store(3, r.start_ns);
  store(4, r.dur_ns);
  store(5, (static_cast<std::uint64_t>(r.name_id) << 32) |
               (static_cast<std::uint64_t>(r.rank) << 8) |
               static_cast<std::uint64_t>(r.kind));
  store(6, r.arg);
  // Publish: readers that acquire this head value see the slot words above.
  head_.store(h + 1, std::memory_order_release);
}

std::uint64_t Ring::drain(std::uint64_t cursor, std::vector<Record>& out,
                          std::uint64_t& dropped) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t start = cursor;
  if (head > cap_ && start < head - cap_) {
    // The writer lapped us before this drain: those records are gone.
    dropped += (head - cap_) - start;
    start = head - cap_;
  }
  for (std::uint64_t i = start; i < head; ++i) {
    const std::size_t base = (i & (cap_ - 1)) * kRecordWords;
    std::uint64_t w[kRecordWords];
    for (std::size_t k = 0; k < kRecordWords; ++k) {
      w[k] = slots_[base + k].load(std::memory_order_relaxed);
    }
    // Seqlock-style validation: the acquire fence orders the relaxed slot
    // loads above before the head re-load below, so if the writer lapped
    // slot i mid-copy the re-loaded head exposes it and the (possibly
    // torn, but atomically read) record is discarded.
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t head2 = head_.load(std::memory_order_relaxed);
    if (head2 > cap_ && i < head2 - cap_) {
      dropped += 1;
      continue;
    }
    Record r;
    r.trace_id = w[0];
    r.span_id = w[1];
    r.parent_span = w[2];
    r.start_ns = w[3];
    r.dur_ns = w[4];
    r.name_id = static_cast<std::uint32_t>(w[5] >> 32);
    r.rank = static_cast<std::uint32_t>((w[5] >> 8) & 0xffffffu);
    r.kind = static_cast<RecordKind>(w[5] & 0xffu);
    r.arg = w[6];
    out.push_back(r);
  }
  return head;
}

// --- global recorder --------------------------------------------------------

std::atomic<bool> g_trace_enabled{false};

namespace {

constexpr std::size_t kRingRecords = 8192;  // per thread, ~450 KB

struct ThreadRing {
  std::uint32_t index = 0;
  std::string label;
  Ring ring{kRingRecords};
  // Reader-side state, guarded by Recorder::mu_ (drains are serialized).
  std::uint64_t cursor = 0;
  std::uint64_t dropped_reported = 0;
};

// Rings outlive their threads (a drain after join() must still see their
// records), so the recorder owns them and threads only borrow a pointer.
struct Recorder {
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> ids_;

  static Recorder& instance() {
    static Recorder* r = new Recorder();  // leaked: outlives static dtors
    return *r;
  }
};

std::atomic<std::uint32_t> g_default_rank{0};
thread_local std::uint32_t tl_rank = 0xffffffffu;  // sentinel: use default
thread_local TraceContext tl_context{};
thread_local ThreadRing* tl_ring = nullptr;
thread_local std::uint64_t tl_span_counter = 0;

ThreadRing& this_thread_ring() {
  if (tl_ring == nullptr) {
    Recorder& rec = Recorder::instance();
    std::lock_guard<std::mutex> lock(rec.mu_);
    auto tr = std::make_unique<ThreadRing>();
    tr->index = static_cast<std::uint32_t>(rec.rings_.size());
    tr->label = "thread-" + std::to_string(tr->index);
    tl_ring = tr.get();
    rec.rings_.push_back(std::move(tr));
  }
  return *tl_ring;
}

std::uint64_t next_id() {
  // Unique across ranks and threads without coordination: rank and thread
  // index tag the top bits, a thread-local counter the bottom.
  const std::uint64_t rank = current_rank();
  const std::uint64_t thread = this_thread_ring().index;
  return ((rank + 1) << 48) | ((thread & 0xffff) << 32) |
         (++tl_span_counter & 0xffffffffu);
}

}  // namespace

void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t intern(std::string_view name) {
  Recorder& rec = Recorder::instance();
  std::lock_guard<std::mutex> lock(rec.mu_);
  const auto it = rec.ids_.find(name);
  if (it != rec.ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(rec.names_.size());
  rec.names_.emplace_back(name);
  rec.ids_.emplace(std::string(name), id);
  return id;
}

void set_default_rank(std::uint32_t rank) {
  g_default_rank.store(rank, std::memory_order_relaxed);
}

std::uint32_t current_rank() {
  return tl_rank != 0xffffffffu
             ? tl_rank
             : g_default_rank.load(std::memory_order_relaxed);
}

void set_thread_label(std::string label) {
  ThreadRing& tr = this_thread_ring();
  std::lock_guard<std::mutex> lock(Recorder::instance().mu_);
  tr.label = std::move(label);
}

RankScope::RankScope(std::uint32_t rank) : prev_(tl_rank) { tl_rank = rank; }
RankScope::~RankScope() { tl_rank = prev_; }

TraceContext current_context() { return tl_context; }

std::uint64_t new_trace_id() { return next_id(); }
std::uint64_t new_span_id() { return next_id(); }

ContextScope::ContextScope(TraceContext ctx) : prev_(tl_context) {
  tl_context = ctx;
}
ContextScope::~ContextScope() { tl_context = prev_; }

void ScopedSpan::begin(std::uint32_t name_id, std::uint64_t arg) {
  active_ = true;
  name_id_ = name_id;
  arg_ = arg;
  rank_ = current_rank();
  span_id_ = new_span_id();
  prev_ = tl_context;
  tl_context = TraceContext{prev_.trace_id, span_id_};
  start_ns_ = now_ns();
}

void ScopedSpan::end() {
  const std::uint64_t end_ns = now_ns();
  tl_context = prev_;
  Record r;
  r.trace_id = prev_.trace_id;
  r.span_id = span_id_;
  r.parent_span = prev_.span_id;
  r.start_ns = start_ns_;
  r.dur_ns = end_ns - start_ns_;
  r.name_id = name_id_;
  r.rank = rank_;
  r.kind = RecordKind::kSpan;
  r.arg = arg_;
  this_thread_ring().ring.write(r);
}

void emit_event(std::uint32_t name_id, std::uint64_t arg) {
  if (!trace_enabled()) return;
  Record r;
  r.trace_id = tl_context.trace_id;
  r.span_id = new_span_id();
  r.parent_span = tl_context.span_id;
  r.start_ns = now_ns();
  r.dur_ns = 0;
  r.name_id = name_id;
  r.rank = current_rank();
  r.kind = RecordKind::kEvent;
  r.arg = arg;
  this_thread_ring().ring.write(r);
}

TraceSnapshot drain_snapshot() {
  Recorder& rec = Recorder::instance();
  std::lock_guard<std::mutex> lock(rec.mu_);
  TraceSnapshot out;
  out.names = rec.names_;
  for (auto& tr : rec.rings_) {
    ThreadTrace tt;
    tt.thread_index = tr->index;
    tt.label = tr->label;
    std::uint64_t dropped_total = tr->dropped_reported;
    tr->cursor = tr->ring.drain(tr->cursor, tt.records, dropped_total);
    tt.dropped = dropped_total - tr->dropped_reported;
    tr->dropped_reported = dropped_total;
    if (!tt.records.empty() || tt.dropped != 0) {
      out.threads.push_back(std::move(tt));
    }
  }
  return out;
}

void merge_snapshot(TraceSnapshot& into, TraceSnapshot&& more) {
  if (more.names.size() > into.names.size()) into.names = std::move(more.names);
  for (auto& mt : more.threads) {
    ThreadTrace* match = nullptr;
    for (auto& t : into.threads) {
      if (t.thread_index == mt.thread_index) {
        match = &t;
        break;
      }
    }
    if (match == nullptr) {
      into.threads.push_back(std::move(mt));
      continue;
    }
    match->dropped += mt.dropped;
    match->records.insert(match->records.end(),
                          std::make_move_iterator(mt.records.begin()),
                          std::make_move_iterator(mt.records.end()));
    if (match->label.empty()) match->label = std::move(mt.label);
  }
}

}  // namespace tulkun::obs
