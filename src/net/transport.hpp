// Transport abstraction for the distributed runtime.
//
// A Transport moves opaque byte frames between numbered peers (process
// ranks). Two implementations share the interface:
//
//  - SocketTransport (socket_transport.hpp): real TCP or Unix-domain
//    sockets on a non-blocking epoll loop, with exponential-backoff
//    reconnect and heartbeat-based dead-peer detection — the wire the
//    paper's switch-resident verifiers would use.
//  - InProcTransport (inproc.hpp): a loopback hub for deterministic tests;
//    same semantics, no sockets.
//
// Delivery contract (what DistributedRuntime builds on): frames between a
// live (sender, receiver) pair arrive complete, in order, exactly once. A
// frame is dropped only if the sender's queue is discarded (stop) or the
// receiver restarts while it is in flight; it is never delivered twice —
// the sender unqueues a frame only once its final byte is accepted by the
// kernel, and a receiver's partial frame buffer dies with its connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace tulkun::net {

/// Process rank. Rank 0 is the coordinator by convention; device processes
/// are 1..N. (Unrelated to DeviceId: one process hosts many devices.)
using PeerId = std::uint32_t;

enum class TransportKind : std::uint8_t { Inproc, Unix, Tcp };

[[nodiscard]] const char* transport_kind_name(TransportKind k);
/// Parses "inproc" | "uds" | "tcp"; throws Error on anything else.
[[nodiscard]] TransportKind parse_transport_kind(const std::string& s);

/// One dialable address: a Unix socket path or an ip:port string.
struct Endpoint {
  TransportKind kind = TransportKind::Unix;
  std::string address;
};

/// Per-peer link counters. "Link" means the pair of directed connections
/// between this process and one peer (we dial the outbound side; the peer
/// dials the inbound side).
struct LinkMetrics {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;  // wire bytes incl. frame headers
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t reconnects = 0;        // connections established after the first
  std::uint64_t heartbeat_misses = 0;  // liveness windows missed by the peer
  std::uint64_t protocol_errors = 0;   // malformed frames (dead-peer path)
  std::uint64_t send_queue_depth = 0;  // frames queued now (snapshot)
  std::uint64_t send_queue_peak = 0;   // max frames ever queued at once

  void merge(const LinkMetrics& o);
};

/// Hot-path form of LinkMetrics: transports bump these per frame without a
/// lock (connection state caches a pointer to its peer's instance), and
/// snapshot() materializes a plain LinkMetrics for reporting. Instances
/// must stay address-stable (live in a node-stable map).
struct AtomicLinkMetrics {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> heartbeat_misses{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> send_queue_depth{0};
  std::atomic<std::uint64_t> send_queue_peak{0};

  /// Monotonic max for send_queue_peak.
  void note_queue_depth(std::uint64_t depth) {
    send_queue_depth.store(depth, std::memory_order_relaxed);
    std::uint64_t cur = send_queue_peak.load(std::memory_order_relaxed);
    while (cur < depth && !send_queue_peak.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] LinkMetrics snapshot() const {
    LinkMetrics m;
    m.frames_sent = frames_sent.load(std::memory_order_relaxed);
    m.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    m.frames_received = frames_received.load(std::memory_order_relaxed);
    m.bytes_received = bytes_received.load(std::memory_order_relaxed);
    m.reconnects = reconnects.load(std::memory_order_relaxed);
    m.heartbeat_misses = heartbeat_misses.load(std::memory_order_relaxed);
    m.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    m.send_queue_depth = send_queue_depth.load(std::memory_order_relaxed);
    m.send_queue_peak = send_queue_peak.load(std::memory_order_relaxed);
    return m;
  }
};

/// A snapshot row: counters towards one peer.
struct PeerLinkMetrics {
  PeerId peer = 0;
  LinkMetrics m;
};

class Transport {
 public:
  struct Handlers {
    /// A complete application frame from `from`. Called on the transport's
    /// internal thread (or the sender's thread for InProc): must not
    /// block, typically enqueues into the owner's worker queue.
    std::function<void(PeerId from, std::vector<std::uint8_t> frame)>
        on_frame;
    /// Peer liveness edge: up=true when a peer (re)connects inbound,
    /// up=false when its inbound connection dies or goes silent past the
    /// heartbeat deadline. Optional.
    std::function<void(PeerId peer, bool up)> on_peer_state;
  };

  virtual ~Transport() = default;

  /// Starts I/O. Handlers may fire from this point on.
  virtual void start(Handlers handlers) = 0;

  /// Queues a frame to `to`. Never blocks: if the peer is down the frame
  /// waits in the send queue across reconnect attempts.
  virtual void send(PeerId to, std::vector<std::uint8_t> frame) = 0;

  /// Stops I/O and joins internal threads. Queued frames are dropped.
  virtual void stop() = 0;

  [[nodiscard]] virtual PeerId self() const = 0;

  /// Snapshot of the per-peer counters.
  [[nodiscard]] virtual std::vector<PeerLinkMetrics> link_metrics() const = 0;
};

}  // namespace tulkun::net
