// Wire framing for the network transport.
//
// Every byte stream (TCP, Unix-domain socket) carries a sequence of
// length-prefixed frames:
//
//   u32 magic   "TULK" (0x4b4c5554 little-endian)
//   u8  type    transport frame type (hello / heartbeat / data)
//   u32 length  payload byte count
//   ...         payload
//
// The parser is incremental: feed() accepts arbitrary byte slices (partial
// reads are the norm on non-blocking sockets) and emits only complete
// frames. Malformed input — wrong magic, a declared length above the cap —
// raises a typed FrameError so the connection owner can take the dead-peer
// path instead of allocating unbounded memory.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace tulkun::net {

constexpr std::uint32_t kFrameMagic = 0x4b4c5554u;  // "TULK"
constexpr std::size_t kFrameHeaderBytes = 9;        // magic + type + length

/// Transport-level frame types. Application payloads ride in kData; the
/// others are connection management.
enum class FrameType : std::uint8_t {
  kHello = 1,      // payload: u32 peer rank (sent once per connection)
  kHeartbeat = 2,  // empty payload, keeps the receiver's liveness fresh
  kData = 3,       // opaque application payload
};

enum class FrameErrorKind : std::uint8_t {
  BadMagic,   // stream corrupt or not a Tulkun peer
  Oversize,   // declared payload length exceeds the configured cap
  BadType,    // unknown frame type
};

class FrameError : public Error {
 public:
  FrameError(FrameErrorKind kind, const std::string& what)
      : Error("net frame: " + what), kind_(kind) {}
  [[nodiscard]] FrameErrorKind kind() const { return kind_; }

 private:
  FrameErrorKind kind_;
};

/// Serializes one frame (header + payload copy).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload);

struct ParsedFrame {
  FrameType type = FrameType::kData;
  std::vector<std::uint8_t> payload;
};

/// Incremental frame parser for one connection. Not thread-safe; one
/// parser per connection, dropped with it (so a reconnect never resumes a
/// partial frame).
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload_bytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Appends bytes and emits every frame completed by them, in order.
  /// Throws FrameError on malformed input; the parser is then poisoned
  /// (every later feed rethrows) — close the connection.
  std::vector<ParsedFrame> feed(std::span<const std::uint8_t> bytes);

  /// Bytes buffered towards an incomplete frame.
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::size_t max_payload_bytes_;
  std::vector<std::uint8_t> buf_;
  bool poisoned_ = false;
};

}  // namespace tulkun::net
