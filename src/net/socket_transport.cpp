#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/trace.hpp"

namespace tulkun::net {

namespace {

constexpr std::uint32_t kEpollIn = EPOLLIN;
constexpr std::uint32_t kEpollInOut = EPOLLIN | EPOLLOUT;

double mono_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Error(std::string("net: fcntl O_NONBLOCK: ") +
                std::strerror(errno));
  }
}

struct SockAddr {
  union {
    sockaddr sa;
    sockaddr_un un;
    sockaddr_in in;
  } u{};
  socklen_t len = 0;
  int family = AF_UNIX;
};

SockAddr resolve(const Endpoint& ep) {
  SockAddr out;
  if (ep.kind == TransportKind::Unix) {
    out.family = AF_UNIX;
    out.u.un.sun_family = AF_UNIX;
    if (ep.address.size() + 1 > sizeof(out.u.un.sun_path)) {
      throw Error("net: unix socket path too long: " + ep.address);
    }
    std::strncpy(out.u.un.sun_path, ep.address.c_str(),
                 sizeof(out.u.un.sun_path) - 1);
    out.len = sizeof(sockaddr_un);
    return out;
  }
  if (ep.kind == TransportKind::Tcp) {
    const auto colon = ep.address.rfind(':');
    if (colon == std::string::npos) {
      throw Error("net: tcp endpoint must be ip:port, got " + ep.address);
    }
    const std::string host = ep.address.substr(0, colon);
    const int port = std::stoi(ep.address.substr(colon + 1));
    out.family = AF_INET;
    out.u.in.sin_family = AF_INET;
    out.u.in.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &out.u.in.sin_addr) != 1) {
      throw Error("net: bad tcp address " + ep.address);
    }
    out.len = sizeof(sockaddr_in);
    return out;
  }
  throw Error("net: inproc endpoints have no socket address");
}

std::vector<std::uint8_t> hello_payload(PeerId self) {
  std::vector<std::uint8_t> p(4);
  for (int i = 0; i < 4; ++i) {
    p[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(self >> (8 * i));
  }
  return p;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig cfg)
    : cfg_(std::move(cfg)) {}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::start(Handlers handlers) {
  if (started_) throw Error("net: transport already started");
  started_ = true;
  handlers_ = std::move(handlers);

  // Listener and dial state are created before the loop thread exists, so
  // local_endpoint() is valid immediately after start() returns.
  if (!cfg_.listen.address.empty()) start_listener();
  for (const auto& [peer, ep] : cfg_.peers) {
    OutConn c;
    c.peer = peer;
    c.target = ep;
    c.backoff_s = cfg_.backoff_initial_s;
    c.metrics = &metrics_of(peer);
    out_.emplace(peer, std::move(c));
  }

  metrics_provider_ = obs::Registry::instance().add_provider(
      [this](std::vector<obs::Sample>& out) {
        LinkMetrics total;
        for (const auto& row : link_metrics()) total.merge(row.m);
        out.push_back({"net_frames_sent", double(total.frames_sent)});
        out.push_back({"net_bytes_sent", double(total.bytes_sent)});
        out.push_back({"net_frames_received", double(total.frames_received)});
        out.push_back({"net_bytes_received", double(total.bytes_received)});
        out.push_back({"net_reconnects", double(total.reconnects)});
        out.push_back(
            {"net_heartbeat_misses", double(total.heartbeat_misses)});
        out.push_back({"net_protocol_errors", double(total.protocol_errors)});
        out.push_back(
            {"net_send_queue_depth", double(total.send_queue_depth)});
        out.push_back({"net_send_queue_peak", double(total.send_queue_peak)});
      });

  thread_ = std::thread([this] {
    for (auto& [peer, c] : out_) dial(c);
    // Liveness sweep: declare peers dead after dead_after_s of silence.
    const double sweep = std::max(1e-3, cfg_.dead_after_s / 2.0);
    std::function<void()> tick = [this, sweep, &tick]() {
      sweep_liveness();
      loop_.run_after(sweep, tick);
    };
    loop_.run_after(sweep, tick);
    loop_.run();
  });
}

void SocketTransport::start_listener() {
  const SockAddr addr = resolve(cfg_.listen);
  listen_fd_ = ::socket(addr.family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("net: socket: ") + std::strerror(errno));
  }
  if (addr.family == AF_UNIX) {
    // A restarted process reuses its endpoint; stale socket files would
    // make bind fail with EADDRINUSE.
    ::unlink(cfg_.listen.address.c_str());
  } else {
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(listen_fd_, &addr.u.sa, addr.len) < 0) {
    throw Error("net: bind " + cfg_.listen.address + ": " +
                std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    throw Error(std::string("net: listen: ") + std::strerror(errno));
  }
  set_nonblocking(listen_fd_);

  bound_ = cfg_.listen;
  if (cfg_.listen.kind == TransportKind::Tcp) {
    sockaddr_in sin{};
    socklen_t len = sizeof(sin);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sin), &len) ==
        0) {
      char ip[INET_ADDRSTRLEN] = {0};
      ::inet_ntop(AF_INET, &sin.sin_addr, ip, sizeof(ip));
      bound_.address = std::string(ip) + ":" + std::to_string(ntohs(sin.sin_port));
    }
  }
  loop_.add_fd(listen_fd_, kEpollIn, [this](std::uint32_t) { accept_ready(); });
}

Endpoint SocketTransport::local_endpoint() const { return bound_; }

void SocketTransport::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    InConn c;
    c.fd = fd;
    c.parser = std::make_unique<FrameParser>(cfg_.max_frame_bytes);
    c.last_rx_s = mono_now_s();
    in_.emplace(fd, std::move(c));
    loop_.add_fd(fd, kEpollIn, [this, fd](std::uint32_t) { in_readable(fd); });
  }
}

void SocketTransport::dial(OutConn& c) {
  if (stopped_) return;
  SockAddr addr;
  try {
    addr = resolve(c.target);
  } catch (const Error&) {
    return;  // permanently un-dialable endpoint
  }
  c.fd = ::socket(addr.family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (c.fd < 0) {
    on_dial_result(c, false);
    return;
  }
  set_nonblocking(c.fd);
  if (addr.family == AF_INET) {
    const int one = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  const int rc = ::connect(c.fd, &addr.u.sa, addr.len);
  const auto conn_cb = [this, peer = c.peer](std::uint32_t ev) {
    auto it = out_.find(peer);
    if (it == out_.end()) return;
    OutConn& oc = it->second;
    if (oc.connecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(oc.fd, SOL_SOCKET, SO_ERROR, &err, &len);
      oc.connecting = false;
      on_dial_result(oc, err == 0 && !(ev & (EPOLLERR | EPOLLHUP)));
      return;
    }
    if (ev & (EPOLLERR | EPOLLHUP)) {
      drop_out(oc, true);
      return;
    }
    if (ev & EPOLLIN) {
      // The receiver never writes back on our outbound connection, so any
      // readable event is EOF or reset (peer died/restarted).
      if (!out_drain(oc)) return;  // connection dropped
    }
    if (ev & EPOLLOUT) out_writable(oc);
  };
  if (rc == 0) {
    loop_.add_fd(c.fd, kEpollIn, conn_cb);
    on_dial_result(c, true);
    return;
  }
  if (errno == EINPROGRESS) {
    c.connecting = true;
    loop_.add_fd(c.fd, kEpollInOut, conn_cb);
    return;
  }
  ::close(c.fd);
  c.fd = -1;
  on_dial_result(c, false);
}

void SocketTransport::on_dial_result(OutConn& c, bool ok) {
  if (!ok) {
    drop_out(c, true);
    return;
  }
  c.connected = true;
  c.backoff_s = cfg_.backoff_initial_s;
  c.head_offset = 0;
  // Identify ourselves before any queued data; a reconnect re-sends the
  // hello because the receiver's old connection (and identity) died.
  c.queue.push_front(encode_frame(FrameType::kHello, hello_payload(cfg_.self)));
  if (c.ever_connected) {
    c.metrics->reconnects.fetch_add(1, std::memory_order_relaxed);
    TLK_EVENT_ARG("net.redial", c.peer);
  }
  c.ever_connected = true;
  arm_heartbeat(c);
  flush(c);
}

void SocketTransport::arm_heartbeat(OutConn& c) {
  if (c.heartbeat_timer != 0) loop_.cancel(c.heartbeat_timer);
  c.heartbeat_timer =
      loop_.run_after(cfg_.heartbeat_interval_s, [this, peer = c.peer] {
        auto it = out_.find(peer);
        if (it == out_.end()) return;
        OutConn& oc = it->second;
        oc.heartbeat_timer = 0;
        if (oc.connected) {
          // Only when idle: in-flight data already proves liveness.
          if (oc.queue.empty()) {
            oc.queue.push_back(encode_frame(FrameType::kHeartbeat, {}));
            flush(oc);
          }
          arm_heartbeat(oc);
        }
      });
}

void SocketTransport::out_writable(OutConn& c) {
  if (c.connected) flush(c);
}

bool SocketTransport::out_drain(OutConn& c) {
  std::uint8_t buf[256];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) continue;  // unexpected chatter; ignore
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      drop_out(c, true);
      return false;
    }
    if (errno == EINTR) continue;
    return true;  // EAGAIN
  }
}

void SocketTransport::flush(OutConn& c) {
  if (!c.connected || c.fd < 0) return;
  while (!c.queue.empty()) {
    const auto& buf = c.queue.front();
    const std::size_t remaining = buf.size() - c.head_offset;
    const ssize_t n =
        ::send(c.fd, buf.data() + c.head_offset, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        loop_.mod_fd(c.fd, kEpollInOut);
        return;
      }
      if (errno == EINTR) continue;
      drop_out(c, true);
      return;
    }
    c.metrics->bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
    c.head_offset += static_cast<std::size_t>(n);
    if (c.head_offset < buf.size()) {
      loop_.mod_fd(c.fd, kEpollInOut);
      return;
    }
    // The frame is fully handed to the kernel: only now is it unqueued, so
    // a connection drop can never lose a frame the receiver might still be
    // waiting for — and never resends one it fully shipped.
    const bool is_data =
        buf.size() > 4 && buf[4] == static_cast<std::uint8_t>(FrameType::kData);
    const std::uint64_t frame_bytes = buf.size();
    c.queue.pop_front();
    c.head_offset = 0;
    if (is_data) {
      c.metrics->frames_sent.fetch_add(1, std::memory_order_relaxed);
      TLK_EVENT_ARG("net.tx_frame", frame_bytes);
    }
    c.metrics->note_queue_depth(c.queue.size());
  }
  loop_.mod_fd(c.fd, kEpollIn);
}

void SocketTransport::drop_out(OutConn& c, bool schedule_retry) {
  if (c.fd >= 0) {
    loop_.del_fd(c.fd);
    ::close(c.fd);
    c.fd = -1;
  }
  c.connected = false;
  c.connecting = false;
  c.head_offset = 0;  // resend the partially-written head frame in full
  if (c.heartbeat_timer != 0) {
    loop_.cancel(c.heartbeat_timer);
    c.heartbeat_timer = 0;
  }
  if (!schedule_retry || stopped_) return;
  if (c.retry_timer != 0) return;  // a retry is already pending
  c.retry_timer = loop_.run_after(c.backoff_s, [this, peer = c.peer] {
    auto it = out_.find(peer);
    if (it == out_.end()) return;
    it->second.retry_timer = 0;
    dial(it->second);
  });
  c.backoff_s = std::min(c.backoff_s * 2.0, cfg_.backoff_max_s);
}

void SocketTransport::in_readable(int fd) {
  auto it = in_.find(fd);
  if (it == in_.end()) return;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      drop_in(fd, false);
      return;
    }
    if (n == 0) {  // orderly close (peer exited or restarted)
      drop_in(fd, false);
      return;
    }
    InConn& c = it->second;
    c.last_rx_s = mono_now_s();
    if (c.identified) {
      peer_last_rx_[c.peer] = c.last_rx_s;
      c.metrics->bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                          std::memory_order_relaxed);
    }
    std::vector<ParsedFrame> frames;
    try {
      frames = c.parser->feed({buf, static_cast<std::size_t>(n)});
    } catch (const FrameError&) {
      // Typed decode failure from an untrusted stream: the dead-peer path.
      drop_in(fd, true);
      return;
    }
    for (auto& f : frames) {
      if (f.type == FrameType::kHello) {
        if (f.payload.size() != 4) {
          drop_in(fd, true);
          return;
        }
        PeerId peer = 0;
        for (int i = 0; i < 4; ++i) {
          peer |= static_cast<PeerId>(f.payload[static_cast<std::size_t>(i)])
                  << (8 * i);
        }
        // A new connection for an already-known peer replaces the old one
        // (the peer restarted); suppress the stale conn's down event.
        for (auto& [ofd, oc] : in_) {
          if (ofd != fd && oc.identified && oc.peer == peer) {
            oc.identified = false;
            loop_.run_after(0.0, [this, ofd] { drop_in(ofd, false); });
          }
        }
        c.identified = true;
        c.peer = peer;
        c.metrics = &metrics_of(peer);
        peer_last_rx_[peer] = c.last_rx_s;
        if (handlers_.on_peer_state) handlers_.on_peer_state(peer, true);
      } else if (f.type == FrameType::kData) {
        if (!c.identified) {
          drop_in(fd, true);
          return;
        }
        c.metrics->frames_received.fetch_add(1, std::memory_order_relaxed);
        TLK_EVENT_ARG("net.rx_frame", f.payload.size());
        if (handlers_.on_frame) handlers_.on_frame(c.peer, std::move(f.payload));
      }
      // kHeartbeat: last_rx_s refresh above is all it is for.
    }
  }
}

void SocketTransport::drop_in(int fd, bool count_protocol_error) {
  auto it = in_.find(fd);
  if (it == in_.end()) return;
  const bool identified = it->second.identified;
  const PeerId peer = it->second.peer;
  loop_.del_fd(fd);
  ::close(fd);
  in_.erase(it);
  if (identified) {
    if (count_protocol_error) {
      metrics_of(peer).protocol_errors.fetch_add(1, std::memory_order_relaxed);
    }
    peer_last_rx_.erase(peer);
    if (handlers_.on_peer_state) handlers_.on_peer_state(peer, false);
  }
}

void SocketTransport::sweep_liveness() {
  const double now = mono_now_s();
  std::vector<int> dead;
  for (auto& [fd, c] : in_) {
    if (c.identified && now - c.last_rx_s > cfg_.dead_after_s) {
      c.metrics->heartbeat_misses.fetch_add(1, std::memory_order_relaxed);
      TLK_EVENT_ARG("net.peer_dead", c.peer);
      dead.push_back(fd);
    }
  }
  for (const int fd : dead) drop_in(fd, false);
}

void SocketTransport::send(PeerId to, std::vector<std::uint8_t> frame) {
  if (!cfg_.peers.contains(to)) {
    throw Error("net: send to unknown peer " + std::to_string(to));
  }
  if (frame.size() > cfg_.max_frame_bytes) {
    throw Error("net: frame exceeds max_frame_bytes");
  }
  auto encoded = encode_frame(FrameType::kData, frame);
  loop_.post([this, to, encoded = std::move(encoded)]() mutable {
    auto it = out_.find(to);
    if (it == out_.end()) return;
    OutConn& c = it->second;
    c.queue.push_back(std::move(encoded));
    c.metrics->note_queue_depth(c.queue.size());
    if (c.connected) flush(c);
  });
}

void SocketTransport::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  loop_.post([this] {
    for (auto& [peer, c] : out_) {
      if (c.retry_timer != 0) loop_.cancel(c.retry_timer);
      if (c.heartbeat_timer != 0) loop_.cancel(c.heartbeat_timer);
      if (c.fd >= 0) {
        loop_.del_fd(c.fd);
        ::close(c.fd);
        c.fd = -1;
      }
      c.connected = false;
    }
    for (auto& [fd, c] : in_) {
      loop_.del_fd(fd);
      ::close(fd);
    }
    in_.clear();
    if (listen_fd_ >= 0) {
      loop_.del_fd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  if (cfg_.listen.kind == TransportKind::Unix && !cfg_.listen.address.empty()) {
    ::unlink(cfg_.listen.address.c_str());
  }
}

AtomicLinkMetrics& SocketTransport::metrics_of(PeerId peer) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_[peer];
}

std::vector<PeerLinkMetrics> SocketTransport::link_metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  std::vector<PeerLinkMetrics> out;
  out.reserve(metrics_.size());
  for (const auto& [peer, m] : metrics_) out.push_back({peer, m.snapshot()});
  return out;
}

std::vector<Endpoint> local_endpoints(TransportKind kind,
                                      const std::string& dir,
                                      std::size_t n_ranks,
                                      std::uint16_t base_port) {
  std::vector<Endpoint> out;
  out.reserve(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    Endpoint ep;
    ep.kind = kind;
    if (kind == TransportKind::Unix) {
      ep.address = dir + "/p" + std::to_string(r) + ".sock";
    } else if (kind == TransportKind::Tcp) {
      ep.address = "127.0.0.1:" + std::to_string(base_port + r);
    } else {
      ep.address = "inproc-" + std::to_string(r);
    }
    out.push_back(std::move(ep));
  }
  return out;
}

SocketTransportConfig mesh_config(PeerId rank,
                                  const std::vector<Endpoint>& endpoints) {
  SocketTransportConfig cfg;
  cfg.self = rank;
  cfg.listen = endpoints.at(rank);
  for (PeerId p = 0; p < endpoints.size(); ++p) {
    if (p != rank) cfg.peers.emplace(p, endpoints[p]);
  }
  return cfg;
}

}  // namespace tulkun::net
