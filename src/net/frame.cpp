#include "net/frame.hpp"

#include <cstring>

namespace tulkun::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<ParsedFrame> FrameParser::feed(
    std::span<const std::uint8_t> bytes) {
  if (poisoned_) {
    throw FrameError(FrameErrorKind::BadMagic, "parser poisoned");
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());

  std::vector<ParsedFrame> out;
  std::size_t pos = 0;
  const auto fail = [&](FrameErrorKind kind, const char* what) {
    poisoned_ = true;
    buf_.clear();
    throw FrameError(kind, what);
  };
  while (buf_.size() - pos >= kFrameHeaderBytes) {
    const std::uint8_t* hdr = buf_.data() + pos;
    if (get_u32(hdr) != kFrameMagic) {
      fail(FrameErrorKind::BadMagic, "bad magic");
    }
    const auto type = static_cast<FrameType>(hdr[4]);
    if (type != FrameType::kHello && type != FrameType::kHeartbeat &&
        type != FrameType::kData) {
      fail(FrameErrorKind::BadType, "unknown frame type");
    }
    const std::uint32_t len = get_u32(hdr + 5);
    // Checked before any allocation: a hostile peer declaring a 4 GB
    // payload must not make us reserve it.
    if (len > max_payload_bytes_) {
      fail(FrameErrorKind::Oversize, "declared payload exceeds cap");
    }
    if (buf_.size() - pos - kFrameHeaderBytes < len) break;  // partial
    ParsedFrame f;
    f.type = type;
    f.payload.assign(hdr + kFrameHeaderBytes, hdr + kFrameHeaderBytes + len);
    out.push_back(std::move(f));
    pos += kFrameHeaderBytes + len;
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

}  // namespace tulkun::net
