#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

namespace tulkun::net {

namespace {

[[noreturn]] void sys_fail(const char* what) {
  throw Error(std::string("event loop: ") + what + ": " +
              std::strerror(errno));
}

}  // namespace

double EventLoop::now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) sys_fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) sys_fail("eventfd");
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t n = 0;
    while (::read(wake_fd_, &n, sizeof(n)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    sys_fail("epoll_ctl add");
  }
  fds_[fd] = std::move(cb);
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    sys_fail("epoll_ctl mod");
  }
}

void EventLoop::del_fd(int fd) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

EventLoop::TimerId EventLoop::run_after(double delay_s,
                                        std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timers_.push(Timer{now_s() + std::max(0.0, delay_s), id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel(TimerId id) { timer_fns_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    stop_requested_ = true;
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    drain_posted();
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (stop_requested_) break;
    }

    // Fire due timers; compute the wait until the next one.
    int timeout_ms = -1;
    while (!timers_.empty()) {
      const Timer t = timers_.top();
      if (!timer_fns_.contains(t.id)) {  // cancelled
        timers_.pop();
        continue;
      }
      const double dt = t.deadline - now_s();
      if (dt > 0.0) {
        timeout_ms = static_cast<int>(std::ceil(dt * 1e3));
        break;
      }
      timers_.pop();
      auto it = timer_fns_.find(t.id);
      auto fn = std::move(it->second);
      timer_fns_.erase(it);
      fn();
    }

    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      // A callback earlier in this batch may have unregistered this fd.
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      // Copy: the callback may del_fd(fd) and invalidate the map slot.
      FdCallback cb = it->second;
      cb(events[i].events);
    }
  }
  // Tasks posted between the last drain and the stop flag (e.g. the
  // transport's fd-cleanup) must still run.
  drain_posted();
}

}  // namespace tulkun::net
