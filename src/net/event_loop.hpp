// Minimal non-blocking epoll event loop.
//
// One thread calls run(); every other thread talks to the loop through
// post() (eventfd wakeup). File-descriptor callbacks and timers all fire
// on the loop thread, so loop-owned state needs no locks.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"

namespace tulkun::net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback runs
  /// on the loop thread. Loop thread only (or before run()).
  void add_fd(int fd, std::uint32_t events, FdCallback cb);
  /// Updates the interest set of a registered fd. Loop thread only.
  void mod_fd(int fd, std::uint32_t events);
  /// Unregisters `fd` (does not close it). Safe to call for fds whose
  /// callback is currently being dispatched. Loop thread only.
  void del_fd(int fd);

  /// Schedules `fn` on the loop thread after `delay_s` seconds (0 = next
  /// iteration). Loop thread only; from other threads wrap in post().
  TimerId run_after(double delay_s, std::function<void()> fn);
  void cancel(TimerId id);

  /// Thread-safe: queues `fn` for execution on the loop thread and wakes
  /// it. The only cross-thread entry point.
  void post(std::function<void()> fn);

  /// Runs until stop(). Dispatches fd events, timers, and posted tasks.
  void run();

  /// Thread-safe; run() returns after the current iteration.
  void stop();

 private:
  struct Timer {
    double deadline = 0.0;  // seconds on the monotonic clock
    TimerId id = 0;
    bool operator>(const Timer& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      return id > o.id;
    }
  };

  [[nodiscard]] static double now_s();
  void drain_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::unordered_map<int, FdCallback> fds_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;
  TimerId next_timer_ = 1;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // under post_mu_
};

}  // namespace tulkun::net
