#include "net/transport.hpp"

#include <algorithm>

namespace tulkun::net {

const char* transport_kind_name(TransportKind k) {
  switch (k) {
    case TransportKind::Inproc:
      return "inproc";
    case TransportKind::Unix:
      return "uds";
    case TransportKind::Tcp:
      return "tcp";
  }
  return "?";
}

TransportKind parse_transport_kind(const std::string& s) {
  if (s == "inproc") return TransportKind::Inproc;
  if (s == "uds" || s == "unix") return TransportKind::Unix;
  if (s == "tcp") return TransportKind::Tcp;
  throw Error("unknown transport '" + s + "' (expected inproc|uds|tcp)");
}

void LinkMetrics::merge(const LinkMetrics& o) {
  frames_sent += o.frames_sent;
  bytes_sent += o.bytes_sent;
  frames_received += o.frames_received;
  bytes_received += o.bytes_received;
  reconnects += o.reconnects;
  heartbeat_misses += o.heartbeat_misses;
  protocol_errors += o.protocol_errors;
  send_queue_depth += o.send_queue_depth;
  send_queue_peak = std::max(send_queue_peak, o.send_queue_peak);
}

}  // namespace tulkun::net
