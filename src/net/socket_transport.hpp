// Real-network Transport over TCP or Unix-domain sockets.
//
// Connection model: every ordered (sender, receiver) pair gets its own
// connection, dialed and owned by the sender. send(to, ...) rides the
// outbound connection to `to`; frames from `to` arrive on a connection it
// dialed into our listener. Direction-owned connections make reconnect
// responsibility unambiguous (the sender redials, with exponential
// backoff) and eliminate duplicate-connection arbitration.
//
// Exactly-once on a live receiver: a frame stays at the head of the send
// queue until its final byte is accepted by the kernel; if the connection
// dies mid-frame the whole frame is resent on the next connection, and the
// receiver's partial-frame buffer died with the old connection, so the
// resend can never complete an already-delivered frame.
//
// Liveness: the sender emits heartbeats on idle outbound connections; the
// receiver declares a peer dead (on_peer_state down, heartbeat_misses++)
// when nothing — data or heartbeat — arrives within dead_after_s.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"

namespace tulkun::net {

struct SocketTransportConfig {
  PeerId self = 0;
  /// Our listening endpoint (Unix path or ip:port; tcp port may be 0 for
  /// an ephemeral port — see local_endpoint()). Empty address = no
  /// listener (send-only process).
  Endpoint listen;
  /// Outbound dial targets: every peer this process will ever send to.
  std::map<PeerId, Endpoint> peers;

  double heartbeat_interval_s = 0.2;
  double dead_after_s = 1.0;
  double backoff_initial_s = 0.02;
  double backoff_max_s = 1.0;
  /// Frame payload cap, enforced on both sides (send throws, receive takes
  /// the dead-peer path).
  std::size_t max_frame_bytes = std::size_t{64} << 20;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig cfg);
  ~SocketTransport() override;

  void start(Handlers handlers) override;
  void send(PeerId to, std::vector<std::uint8_t> frame) override;
  void stop() override;
  [[nodiscard]] PeerId self() const override { return cfg_.self; }
  [[nodiscard]] std::vector<PeerLinkMetrics> link_metrics() const override;

  /// The bound listen endpoint (resolves tcp port 0 to the actual port).
  /// Valid after start().
  [[nodiscard]] Endpoint local_endpoint() const;

 private:
  struct OutConn {
    PeerId peer = 0;
    Endpoint target;
    int fd = -1;
    bool connected = false;   // TCP handshake + hello sent
    bool connecting = false;  // non-blocking connect in flight
    bool ever_connected = false;
    double backoff_s = 0.0;
    EventLoop::TimerId retry_timer = 0;
    // Send queue: encoded frames; head may be partially written.
    std::deque<std::vector<std::uint8_t>> queue;
    std::size_t head_offset = 0;
    EventLoop::TimerId heartbeat_timer = 0;
    // Cached so the per-frame hot path never takes metrics_mu_.
    AtomicLinkMetrics* metrics = nullptr;
  };

  struct InConn {
    int fd = -1;
    PeerId peer = 0;  // learned from the hello frame
    bool identified = false;
    std::unique_ptr<FrameParser> parser;
    double last_rx_s = 0.0;
    AtomicLinkMetrics* metrics = nullptr;  // set once identified
  };

  // All private methods run on the loop thread.
  void start_listener();
  void accept_ready();
  void dial(OutConn& c);
  void on_dial_result(OutConn& c, bool ok);
  void out_writable(OutConn& c);
  /// Drains unexpected readable bytes on an outbound connection; returns
  /// false if EOF/reset forced a drop.
  bool out_drain(OutConn& c);
  void flush(OutConn& c);
  void drop_out(OutConn& c, bool schedule_retry);
  void in_readable(int fd);
  void drop_in(int fd, bool count_protocol_error);
  void sweep_liveness();
  void arm_heartbeat(OutConn& c);

  /// Node-stable: the returned reference outlives the map entry's peers.
  AtomicLinkMetrics& metrics_of(PeerId peer);

  SocketTransportConfig cfg_;
  Handlers handlers_;
  EventLoop loop_;
  std::thread thread_;
  bool started_ = false;
  // Written by the owner thread in stop(), read by the loop thread when it
  // decides whether a dropped connection deserves a retry timer.
  std::atomic<bool> stopped_{false};

  int listen_fd_ = -1;
  Endpoint bound_;  // listen endpoint with resolved port
  std::map<PeerId, OutConn> out_;
  std::map<int, InConn> in_;  // keyed by fd
  std::map<PeerId, double> peer_last_rx_;

  // Guards only map insert/lookup and snapshot iteration; the counters
  // themselves are atomic and bumped lock-free through cached pointers.
  mutable std::mutex metrics_mu_;
  std::map<PeerId, AtomicLinkMetrics> metrics_;
  obs::Registry::ProviderHandle metrics_provider_;
};

/// Builds the canonical per-rank endpoint set for a local multi-process
/// run: Unix sockets "<dir>/p<rank>.sock", or 127.0.0.1 with consecutive
/// ports starting at base_port for tcp.
[[nodiscard]] std::vector<Endpoint> local_endpoints(TransportKind kind,
                                                    const std::string& dir,
                                                    std::size_t n_ranks,
                                                    std::uint16_t base_port);

/// SocketTransportConfig for `rank` out of `endpoints` (dials every other
/// rank, listens on its own entry).
[[nodiscard]] SocketTransportConfig mesh_config(
    PeerId rank, const std::vector<Endpoint>& endpoints);

}  // namespace tulkun::net
