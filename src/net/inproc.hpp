// In-process loopback Transport for deterministic tests.
//
// An InProcHub is a registry of peers inside one process; send() delivers
// synchronously on the caller's thread (handlers must be thread-safe and
// non-blocking, which DistributedRuntime's queue-push handlers are).
// Frames sent to a peer that has not started yet are parked at the hub and
// flushed in order when it registers — mirroring the socket transport's
// queue-across-reconnect behaviour without real time.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "net/transport.hpp"
#include "obs/registry.hpp"

namespace tulkun::net {

class InProcTransport;

/// Construct with std::make_shared and hand to each InProcTransport.
class InProcHub {
 private:
  friend class InProcTransport;

  struct PeerSlot {
    Transport::Handlers handlers;
    bool up = false;
    std::vector<std::pair<PeerId, std::vector<std::uint8_t>>> parked;
  };

  void deliver(PeerId from, PeerId to, std::vector<std::uint8_t> frame);
  void attach(PeerId self, Transport::Handlers handlers);
  void detach(PeerId self);

  std::mutex mu_;
  std::map<PeerId, PeerSlot> peers_;
};

class InProcTransport final : public Transport {
 public:
  InProcTransport(std::shared_ptr<InProcHub> hub, PeerId self)
      : hub_(std::move(hub)), self_(self) {}
  ~InProcTransport() override { stop(); }

  void start(Handlers handlers) override;
  void send(PeerId to, std::vector<std::uint8_t> frame) override;
  void stop() override;
  [[nodiscard]] PeerId self() const override { return self_; }
  [[nodiscard]] std::vector<PeerLinkMetrics> link_metrics() const override;

 private:
  friend class InProcHub;

  AtomicLinkMetrics& metrics_of(PeerId peer);

  std::shared_ptr<InProcHub> hub_;
  PeerId self_;
  bool started_ = false;

  // Guards only map insert/lookup; counters are atomic (node-stable map).
  mutable std::mutex metrics_mu_;
  std::map<PeerId, AtomicLinkMetrics> metrics_;
  obs::Registry::ProviderHandle metrics_provider_;
};

}  // namespace tulkun::net
