#include "net/inproc.hpp"

#include "net/frame.hpp"

namespace tulkun::net {

void InProcHub::attach(PeerId self, Transport::Handlers handlers) {
  std::vector<std::pair<PeerId, std::vector<std::uint8_t>>> parked;
  std::vector<std::function<void(PeerId, bool)>> notify_up_others;
  Transport::Handlers mine;
  std::vector<PeerId> already_up;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PeerSlot& slot = peers_[self];
    slot.handlers = handlers;
    slot.up = true;
    parked.swap(slot.parked);
    mine = slot.handlers;
    for (auto& [peer, other] : peers_) {
      if (peer == self || !other.up) continue;
      already_up.push_back(peer);
      if (other.handlers.on_peer_state) {
        notify_up_others.push_back(other.handlers.on_peer_state);
      }
    }
  }
  for (auto& fn : notify_up_others) fn(self, true);
  if (mine.on_peer_state) {
    for (const PeerId p : already_up) mine.on_peer_state(p, true);
  }
  if (mine.on_frame) {
    for (auto& [from, frame] : parked) mine.on_frame(from, std::move(frame));
  }
}

void InProcHub::detach(PeerId self) {
  std::vector<std::function<void(PeerId, bool)>> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = peers_.find(self);
    if (it == peers_.end() || !it->second.up) return;
    it->second.up = false;
    it->second.handlers = {};
    for (auto& [peer, other] : peers_) {
      if (peer == self || !other.up) continue;
      if (other.handlers.on_peer_state) {
        notify.push_back(other.handlers.on_peer_state);
      }
    }
  }
  for (auto& fn : notify) fn(self, false);
}

void InProcHub::deliver(PeerId from, PeerId to,
                        std::vector<std::uint8_t> frame) {
  std::function<void(PeerId, std::vector<std::uint8_t>)> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PeerSlot& slot = peers_[to];
    if (!slot.up || !slot.handlers.on_frame) {
      // Park until the peer starts (started-late or restarted peer).
      slot.parked.emplace_back(from, std::move(frame));
      return;
    }
    target = slot.handlers.on_frame;
  }
  // Deliver outside the hub lock: the handler may send() right back.
  target(from, std::move(frame));
}

void InProcTransport::start(Handlers handlers) {
  if (started_) throw Error("net: transport already started");
  started_ = true;
  // Wrap the frame handler so receive-side counters accrue here, like the
  // socket transport's inbound path.
  if (handlers.on_frame) {
    auto inner = std::move(handlers.on_frame);
    handlers.on_frame = [this, inner = std::move(inner)](
                            PeerId from, std::vector<std::uint8_t> frame) {
      auto& m = metrics_of(from);
      m.frames_received.fetch_add(1, std::memory_order_relaxed);
      m.bytes_received.fetch_add(frame.size() + kFrameHeaderBytes,
                                 std::memory_order_relaxed);
      inner(from, std::move(frame));
    };
  }
  metrics_provider_ = obs::Registry::instance().add_provider(
      [this](std::vector<obs::Sample>& out) {
        LinkMetrics total;
        for (const auto& row : link_metrics()) total.merge(row.m);
        out.push_back({"net_frames_sent", double(total.frames_sent)});
        out.push_back({"net_bytes_sent", double(total.bytes_sent)});
        out.push_back({"net_frames_received", double(total.frames_received)});
        out.push_back({"net_bytes_received", double(total.bytes_received)});
      });
  hub_->attach(self_, std::move(handlers));
}

void InProcTransport::send(PeerId to, std::vector<std::uint8_t> frame) {
  auto& m = metrics_of(to);
  m.frames_sent.fetch_add(1, std::memory_order_relaxed);
  m.bytes_sent.fetch_add(frame.size() + kFrameHeaderBytes,  // as-if on wire
                         std::memory_order_relaxed);
  hub_->deliver(self_, to, std::move(frame));
}

AtomicLinkMetrics& InProcTransport::metrics_of(PeerId peer) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_[peer];
}

void InProcTransport::stop() {
  if (!started_) return;
  started_ = false;
  hub_->detach(self_);
}

std::vector<PeerLinkMetrics> InProcTransport::link_metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  std::vector<PeerLinkMetrics> out;
  out.reserve(metrics_.size());
  for (const auto& [peer, m] : metrics_) out.push_back({peer, m.snapshot()});
  return out;
}

}  // namespace tulkun::net
