// Internal declarations shared by the DPVNet construction units.
#pragma once

#include <unordered_set>

#include "dpvnet/build.hpp"
#include "regex/dfa.hpp"
#include "spec/ast.hpp"

namespace tulkun::dpvnet::internal {

/// One counting task's compiled automaton.
struct AtomAutomaton {
  const spec::Behavior* atom = nullptr;  // the Atom behavior node
  regex::Dfa dfa;                        // minimized
  std::vector<spec::LengthFilter> filters;
  bool loop_free = false;
  bool symbolic = false;  // any filter depends on `shortest`
};

/// Compiles every atom of the invariant's behavior; validates boundedness
/// and the equal/subset composition restriction (§4.3: `equal` verifies
/// locally and must be the sole atom; same for `subset`). `dfa_builder`
/// (when non-null) supplies minimized DFAs instead of fresh compiles.
[[nodiscard]] std::vector<AtomAutomaton> prepare_atoms(
    const spec::Invariant& inv,
    const std::function<regex::Dfa(const spec::PathExpr&)>& dfa_builder = {});

/// Normalized failed-link set of a scene (from < to).
[[nodiscard]] std::unordered_set<LinkId> failed_set(
    const spec::FaultScene& scene);

}  // namespace tulkun::dpvnet::internal
