// Compound-invariant handling (§4.3).
//
// The paper's product construction needs two fixes for compound behaviors:
// a single union DPVNet for regexes with different destinations, and
// virtual destination devices for regexes sharing a destination. Our
// enumeration-based construction achieves the same outcome uniformly: each
// valid path is labeled with the set of atoms it matches, acceptance is
// per-atom at DAG nodes, and counting propagates per-universe *tuples* of
// per-atom counts, so counts of different path_exps never need to be
// cross-multiplied at the source (the root cause of both §4.3 phantom
// errors).
#include "dpvnet/internal.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "regex/nfa.hpp"

namespace tulkun::dpvnet::internal {

std::vector<AtomAutomaton> prepare_atoms(
    const spec::Invariant& inv,
    const std::function<regex::Dfa(const spec::PathExpr&)>& dfa_builder) {
  const auto atoms = inv.behavior.atoms();
  if (atoms.empty()) {
    throw Error("invariant '" + inv.name + "' has no behavior atoms");
  }
  if (atoms.size() > 64) {
    throw Error("invariant '" + inv.name + "' has more than 64 atoms");
  }

  const bool has_local_op =
      std::any_of(atoms.begin(), atoms.end(), [](const spec::Behavior* a) {
        return a->op != spec::MatchOpKind::Exist;
      });
  if (has_local_op && atoms.size() > 1) {
    throw Error(
        "invariant '" + inv.name +
        "': equal/subset operators verify locally and cannot be combined "
        "with other atoms");
  }

  std::vector<AtomAutomaton> out;
  out.reserve(atoms.size());
  for (const spec::Behavior* atom : atoms) {
    const spec::PathExpr& pe = atom->path;
    if (!pe.bounded()) {
      throw Error("invariant '" + inv.name + "': path expression '" +
                  pe.regex_text +
                  "' is unbounded (add loop_free or an upper length filter)");
    }
    AtomAutomaton aa;
    aa.atom = atom;
    if (dfa_builder) {
      aa.dfa = dfa_builder(pe);
    } else {
      {
        TLK_SPAN("planner.dfa");
        aa.dfa = regex::Dfa::determinize(regex::build_nfa(pe.ast));
      }
      {
        TLK_SPAN("planner.minimize");
        aa.dfa = aa.dfa.minimize();
      }
    }
    aa.filters = pe.filters;
    aa.loop_free = pe.loop_free;
    aa.symbolic = std::any_of(
        pe.filters.begin(), pe.filters.end(),
        [](const spec::LengthFilter& f) { return f.symbolic(); });
    out.push_back(std::move(aa));
  }
  return out;
}

std::unordered_set<LinkId> failed_set(const spec::FaultScene& scene) {
  std::unordered_set<LinkId> out;
  for (const auto& l : scene.failed) {
    out.insert(l.from < l.to ? l : l.reversed());
  }
  return out;
}

}  // namespace tulkun::dpvnet::internal
