#include "dpvnet/dpvnet.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

namespace tulkun::dpvnet {

bool SceneMask::any() const {
  return std::any_of(bits_.begin(), bits_.end(),
                     [](std::uint64_t b) { return b != 0; });
}

SceneMask& SceneMask::operator|=(const SceneMask& o) {
  if (o.bits_.size() > bits_.size()) bits_.resize(o.bits_.size(), 0);
  for (std::size_t i = 0; i < o.bits_.size(); ++i) bits_[i] |= o.bits_[i];
  return *this;
}

std::size_t SceneMask::hash() const {
  std::size_t seed = bits_.size();
  for (const auto b : bits_) hash_combine(seed, std::hash<std::uint64_t>{}(b));
  return seed;
}

NodeId DpvNet::add_node(DeviceId dev) {
  const auto id = static_cast<NodeId>(nodes_.size());
  DpvNode n;
  n.dev = dev;
  n.scenes = SceneMask(n_scenes_);
  nodes_.push_back(std::move(n));
  return id;
}

void DpvNet::add_edge(NodeId from, NodeId to, const SceneMask& scenes) {
  TULKUN_ASSERT(from < nodes_.size() && to < nodes_.size());
  for (auto& e : nodes_[from].down) {
    if (e.to == to) {
      e.scenes |= scenes;
      return;
    }
  }
  nodes_[from].down.push_back(DpvEdge{to, scenes});
}

std::string DpvNet::label(NodeId id) const {
  const DpvNode& n = node(id);
  return topo_->name(n.dev) + std::to_string(n.copy + 1);
}

std::vector<NodeId> DpvNet::reverse_topological() const {
  // Kahn's algorithm on the reverse graph: start from nodes with no
  // downstream edges (destinations).
  std::vector<std::uint32_t> out_deg(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    out_deg[i] = static_cast<std::uint32_t>(nodes_[i].down.size());
  }
  std::deque<NodeId> ready;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (out_deg[i] == 0) ready.push_back(i);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (const NodeId u : nodes_[n].up) {
      if (--out_deg[u] == 0) ready.push_back(u);
    }
  }
  TULKUN_ASSERT(order.size() == nodes_.size());  // acyclic
  return order;
}

std::vector<NodeId> DpvNet::nodes_of_device(DeviceId dev) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].dev == dev) out.push_back(i);
  }
  return out;
}

void DpvNet::finalize() {
  // Assign per-device copy indices in node order.
  std::unordered_map<DeviceId, std::uint32_t> copies;
  for (auto& n : nodes_) {
    n.copy = copies[n.dev]++;
    n.up.clear();
  }
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (auto& e : nodes_[i].down) {
      nodes_[e.to].up.push_back(i);
    }
  }
  // Node scene mask: union of incident edge masks plus acceptance masks
  // (covers single-node paths where ingress == destination).
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (const auto& e : nodes_[i].down) {
      nodes_[i].scenes |= e.scenes;
      nodes_[e.to].scenes |= e.scenes;
    }
    for (const auto& m : nodes_[i].accept) {
      nodes_[i].scenes |= m;
    }
  }
  // Validates acyclicity as a side effect.
  (void)reverse_topological();
}

std::vector<DeviceId> DpvNet::cut_devices(std::size_t scene) const {
  // A device is a cut iff the number of valid paths through its nodes
  // equals the total number of valid paths. Path counts via two DAG
  // passes (doubles: counts can be astronomically large; equality of the
  // exact integer counts degrades to a ratio check, which is fine for an
  // advisory analysis).
  const auto order = reverse_topological();

  // b[n]: paths from n to an acceptance event, in this scene.
  std::vector<double> b(nodes_.size(), 0.0);
  for (const NodeId n : order) {  // destinations first
    const DpvNode& node = nodes_[n];
    double total = 0.0;
    for (std::size_t atom = 0; atom < node.accept.size(); ++atom) {
      if (node.accept[atom].test(scene)) {
        total += 1.0;
        break;  // one acceptance event per node/path end
      }
    }
    for (const auto& e : node.down) {
      if (e.scenes.test(scene)) total += b[e.to];
    }
    b[n] = total;
  }

  // f[n]: path starts reaching n (sources seed 1).
  std::vector<double> f(nodes_.size(), 0.0);
  for (const auto& [ingress, src] : sources_) {
    if (src != kNoNode && nodes_[src].scenes.test(scene)) f[src] += 1.0;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {  // sources first
    const NodeId n = *it;
    for (const auto& e : nodes_[n].down) {
      if (e.scenes.test(scene)) f[e.to] += f[n];
    }
  }

  double total_paths = 0.0;
  for (const auto& [ingress, src] : sources_) {
    if (src != kNoNode) total_paths += b[src];
  }
  if (total_paths <= 0.0) return {};

  // Paths through a device = sum over its nodes of (starts reaching the
  // node) x (continuations) — counting each path once per visit; valid
  // paths visit a device at most once (simple-path construction), so the
  // sum equals the number of distinct paths through the device.
  std::map<DeviceId, double> through;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    through[nodes_[n].dev] += f[n] * b[n];
  }
  std::vector<DeviceId> out;
  for (const auto& [dev, count] : through) {
    if (count >= total_paths * (1.0 - 1e-9)) out.push_back(dev);
  }
  return out;
}

std::vector<DpvNet::PathOut> DpvNet::all_paths(std::size_t scene) const {
  std::vector<PathOut> out;
  std::vector<DeviceId> cur;

  const std::function<void(NodeId)> dfs = [&](NodeId id) {
    const DpvNode& n = node(id);
    cur.push_back(n.dev);
    std::uint64_t mask = 0;
    for (std::size_t atom = 0; atom < n.accept.size(); ++atom) {
      if (n.accept[atom].test(scene)) mask |= (1ULL << atom);
    }
    if (mask != 0) {
      out.push_back(PathOut{cur, mask});
    }
    for (const auto& e : n.down) {
      if (e.scenes.test(scene)) dfs(e.to);
    }
    cur.pop_back();
  };

  for (const auto& [ingress, src] : sources_) {
    if (src != kNoNode && node(src).scenes.test(scene)) dfs(src);
  }
  return out;
}

}  // namespace tulkun::dpvnet
