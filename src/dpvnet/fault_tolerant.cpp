// Fault-scene expansion (§6): explicit scenes plus `any k` enumeration.
#include <algorithm>
#include <unordered_set>

#include "dpvnet/build.hpp"

namespace tulkun::dpvnet {

namespace {

/// Hash over the canonical (sorted) failed-link list of a scene.
struct SceneHash {
  std::size_t operator()(const spec::FaultScene& s) const noexcept {
    std::size_t seed = s.failed.size();
    for (const auto& l : s.failed) {
      hash_combine(seed, l.from);
      hash_combine(seed, l.to);
    }
    return seed;
  }
};

/// All bidirectional links of the topology, canonicalized from < to.
std::vector<LinkId> all_links(const topo::Topology& topo) {
  std::vector<LinkId> out;
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    for (const auto& a : topo.neighbors(d)) {
      if (a.neighbor > d) out.push_back(LinkId{d, a.neighbor});
    }
  }
  return out;
}

void combos(const std::vector<LinkId>& links, std::size_t k,
            std::size_t start, std::vector<LinkId>& cur,
            std::vector<spec::FaultScene>& out, std::size_t max_scenes) {
  if (cur.size() == k) {
    if (out.size() >= max_scenes) {
      throw Error("fault scene expansion exceeds max_scenes cap (" +
                  std::to_string(max_scenes) + "); narrow the fault spec");
    }
    out.push_back(spec::FaultScene::of(cur));
    return;
  }
  for (std::size_t i = start; i < links.size(); ++i) {
    cur.push_back(links[i]);
    combos(links, k, i + 1, cur, out, max_scenes);
    cur.pop_back();
  }
}

}  // namespace

std::vector<spec::FaultScene> expand_scenes(const topo::Topology& topo,
                                            const spec::FaultSpec& faults,
                                            std::size_t max_scenes) {
  std::vector<spec::FaultScene> out;
  out.push_back(spec::FaultScene{});  // scene 0: no failure

  for (const auto& scene : faults.scenes) {
    out.push_back(scene);
  }
  if (faults.any_k > 0) {
    const auto links = all_links(topo);
    for (std::size_t k = 1; k <= faults.any_k; ++k) {
      std::vector<LinkId> cur;
      combos(links, k, 0, cur, out, max_scenes);
    }
  }

  // Deduplicate while preserving order (scene 0 first, then ascending size
  // because explicit scenes come before generated ones of growing k).
  // Hash-set membership keeps this linear in the scene count; an `any k`
  // spec overlapping its explicit scenes used to pay O(n^2) std::find here.
  std::vector<spec::FaultScene> dedup;
  std::unordered_set<spec::FaultScene, SceneHash> seen;
  for (auto& s : out) {
    if (seen.insert(s).second) {
      dedup.push_back(std::move(s));
    }
  }
  // Stable-sort by failure count so §6 subset reuse sees smaller scenes
  // first (scene 0 stays first).
  std::stable_sort(dedup.begin(), dedup.end(),
                   [](const spec::FaultScene& a, const spec::FaultScene& b) {
                     return a.failed.size() < b.failed.size();
                   });
  if (dedup.size() > max_scenes) {
    throw Error("fault scene expansion exceeds max_scenes cap");
  }
  return dedup;
}

}  // namespace tulkun::dpvnet
