// DPVNet construction: per-(atom, ingress, scene) valid-path enumeration
// with product-automaton pruning, §6 scene reuse, and DAWG compaction.
#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "dpvnet/internal.hpp"
#include "obs/trace.hpp"
#include "regex/nfa.hpp"

namespace tulkun::dpvnet {

namespace {

using internal::AtomAutomaton;
using Path = std::vector<DeviceId>;

struct PathHash {
  std::size_t operator()(const Path& p) const noexcept {
    std::size_t seed = p.size();
    for (const auto d : p) hash_combine(seed, d);
    return seed;
  }
};

bool link_failed(const std::unordered_set<LinkId>& failed, DeviceId a,
                 DeviceId b) {
  return failed.contains(a < b ? LinkId{a, b} : LinkId{b, a});
}

/// Admissible lower bound on remaining hops: for each product state
/// (device, dfa state), the fewest further symbols to reach acceptance
/// along existing, non-failed links.
class ProductDistances {
 public:
  ProductDistances(const topo::Topology& topo, const regex::Dfa& dfa,
                   const std::unordered_set<LinkId>& failed)
      : nq_(static_cast<std::uint32_t>(dfa.state_count())),
        dist_(topo.device_count() * nq_, kUnreachableLen) {
    // Multi-source reverse BFS from accepting product states.
    // Product node (dev, q): path consumed a prefix ending at dev, in q.
    std::deque<std::pair<DeviceId, std::uint32_t>> work;
    for (DeviceId dev = 0; dev < topo.device_count(); ++dev) {
      for (std::uint32_t q = 0; q < nq_; ++q) {
        if (dfa.accepting(q)) {
          at(dev, q) = 0;
          work.emplace_back(dev, q);
        }
      }
    }
    while (!work.empty()) {
      const auto [dev, q] = work.front();
      work.pop_front();
      const std::uint32_t d = at(dev, q);
      // Predecessors: (pd, pq) with a live link pd-dev and δ(pq, dev) == q.
      for (const auto& adj : topo.neighbors(dev)) {
        const DeviceId pd = adj.neighbor;
        if (link_failed(failed, pd, dev)) continue;
        for (std::uint32_t pq = 0; pq < nq_; ++pq) {
          if (dfa.next(pq, dev) == q && at(pd, pq) == kUnreachableLen) {
            at(pd, pq) = d + 1;
            work.emplace_back(pd, pq);
          }
        }
      }
    }
  }

  [[nodiscard]] std::uint32_t get(DeviceId dev, std::uint32_t q) const {
    return dist_[dev * nq_ + q];
  }

 private:
  std::uint32_t& at(DeviceId dev, std::uint32_t q) {
    return dist_[dev * nq_ + q];
  }

  std::uint32_t nq_;
  std::vector<std::uint32_t> dist_;
};

/// DFS enumeration of valid paths from one ingress.
class Enumerator {
 public:
  Enumerator(const topo::Topology& topo, const AtomAutomaton& atom,
             const std::unordered_set<LinkId>& failed,
             const ProductDistances& dist, std::uint32_t shortest,
             std::size_t max_paths)
      : topo_(topo),
        atom_(atom),
        failed_(failed),
        dist_(dist),
        shortest_(shortest),
        max_paths_(max_paths),
        visited_(topo.device_count(), false) {
    // Max hops: tightest upper-bounding filter; simple paths bound the
    // rest. prepare_atoms() guarantees at least one bound exists.
    std::uint32_t maxlen =
        atom.loop_free ? static_cast<std::uint32_t>(topo.device_count()) - 1
                       : kUnreachableLen;
    for (const auto& f : atom.filters) {
      if (const auto ub = f.upper_bound(shortest)) {
        maxlen = std::min(maxlen, *ub);
      }
    }
    TULKUN_ASSERT(maxlen != kUnreachableLen);
    maxlen_ = maxlen;
  }

  [[nodiscard]] std::vector<Path> run(DeviceId ingress) {
    out_.clear();
    if (atom_.dfa.start() == regex::Dfa::kDead) return std::move(out_);
    const std::uint32_t q = atom_.dfa.next(atom_.dfa.start(), ingress);
    if (q == regex::Dfa::kDead) return std::move(out_);
    if (dist_.get(ingress, q) == kUnreachableLen) return std::move(out_);
    cur_.clear();
    cur_.push_back(ingress);
    visited_[ingress] = true;
    dfs(ingress, q);
    visited_[ingress] = false;
    return std::move(out_);
  }

 private:
  [[nodiscard]] bool admits(std::uint32_t hops) const {
    return std::all_of(
        atom_.filters.begin(), atom_.filters.end(),
        [&](const spec::LengthFilter& f) { return f.admits(hops, shortest_); });
  }

  void dfs(DeviceId dev, std::uint32_t q) {
    const auto hops = static_cast<std::uint32_t>(cur_.size()) - 1;
    if (atom_.dfa.accepting(q) && admits(hops)) {
      if (out_.size() >= max_paths_) {
        throw Error("valid-path enumeration exceeds max_paths cap");
      }
      out_.push_back(cur_);
    }
    if (hops == maxlen_) return;
    for (const auto& adj : topo_.neighbors(dev)) {
      const DeviceId nd = adj.neighbor;
      if (link_failed(failed_, dev, nd)) continue;
      if (atom_.loop_free && visited_[nd]) continue;
      const std::uint32_t nq = atom_.dfa.next(q, nd);
      if (nq == regex::Dfa::kDead) continue;
      const std::uint32_t lb = dist_.get(nd, nq);
      if (lb == kUnreachableLen || hops + 1 + lb > maxlen_) continue;
      visited_[nd] = true;
      cur_.push_back(nd);
      dfs(nd, nq);
      cur_.pop_back();
      visited_[nd] = false;
    }
  }

  const topo::Topology& topo_;
  const AtomAutomaton& atom_;
  const std::unordered_set<LinkId>& failed_;
  const ProductDistances& dist_;
  std::uint32_t shortest_;
  std::size_t max_paths_;
  std::uint32_t maxlen_ = 0;
  std::vector<bool> visited_;
  std::vector<Path> out_;
  Path cur_;
};

/// Interns paths so scenes can share storage.
class PathPool {
 public:
  std::uint32_t intern(Path p) {
    const auto it = index_.find(p);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(paths_.size());
    index_.emplace(p, id);
    paths_.push_back(std::move(p));
    return id;
  }

  [[nodiscard]] const Path& get(std::uint32_t id) const { return paths_[id]; }
  [[nodiscard]] std::size_t size() const { return paths_.size(); }

 private:
  std::unordered_map<Path, std::uint32_t, PathHash> index_;
  std::vector<Path> paths_;
};

/// Trie over valid paths, edge/accept scene masks attached.
struct TrieNode {
  DeviceId dev = kNoDevice;
  std::map<DeviceId, std::uint32_t> children;
  SceneMask edge_scenes;             // scenes of the edge INTO this node
  std::vector<SceneMask> accept;     // per-atom acceptance scenes (or empty)
};

class Trie {
 public:
  Trie(std::size_t arity, std::size_t n_scenes)
      : arity_(arity), n_scenes_(n_scenes) {
    nodes_.push_back(TrieNode{});  // root
  }

  void insert(const Path& p, const std::vector<SceneMask>& atom_masks,
              const SceneMask& any_mask) {
    std::uint32_t cur = 0;
    for (const DeviceId dev : p) {
      const auto it = nodes_[cur].children.find(dev);
      std::uint32_t next;
      if (it == nodes_[cur].children.end()) {
        next = static_cast<std::uint32_t>(nodes_.size());
        TrieNode n;
        n.dev = dev;
        n.edge_scenes = SceneMask(n_scenes_);
        nodes_.push_back(std::move(n));
        nodes_[cur].children.emplace(dev, next);
      } else {
        next = it->second;
      }
      nodes_[next].edge_scenes |= any_mask;
      cur = next;
    }
    TrieNode& leaf = nodes_[cur];
    if (leaf.accept.empty()) {
      leaf.accept.assign(arity_, SceneMask(n_scenes_));
    }
    for (std::size_t a = 0; a < arity_; ++a) {
      leaf.accept[a] |= atom_masks[a];
    }
  }

  [[nodiscard]] const std::vector<TrieNode>& nodes() const { return nodes_; }

 private:
  std::size_t arity_;
  std::size_t n_scenes_;
  std::vector<TrieNode> nodes_;
};

/// DAWG compaction: merges trie nodes with identical device, acceptance,
/// and (child canonical id, edge mask) structure — the paper's state
/// minimization, preserving the per-scene path language exactly.
class Compactor {
 public:
  Compactor(const Trie& trie, DpvNet& dag) : trie_(&trie), dag_(&dag) {}

  /// Returns trie-child-index -> canonical DAG node for the root's children.
  std::map<DeviceId, NodeId> run() {
    const auto& nodes = trie_->nodes();
    canon_.assign(nodes.size(), kNoNode);
    // Post-order over the tree: children before parents.
    std::vector<std::uint32_t> order;
    order.reserve(nodes.size());
    std::vector<std::pair<std::uint32_t, bool>> stack{{0, false}};
    while (!stack.empty()) {
      auto [idx, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        order.push_back(idx);
        continue;
      }
      stack.emplace_back(idx, true);
      for (const auto& [dev, child] : nodes[idx].children) {
        stack.emplace_back(child, false);
      }
    }

    for (const std::uint32_t idx : order) {
      if (idx == 0) continue;  // root is virtual
      canon_[idx] = canonicalize(idx);
    }

    std::map<DeviceId, NodeId> sources;
    for (const auto& [dev, child] : nodes[0].children) {
      sources.emplace(dev, canon_[child]);
    }
    return sources;
  }

 private:
  struct Key {
    DeviceId dev;
    std::vector<SceneMask> accept;
    std::vector<std::pair<NodeId, SceneMask>> edges;  // sorted by NodeId
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t seed = k.dev;
      for (const auto& m : k.accept) hash_combine(seed, m.hash());
      for (const auto& [to, m] : k.edges) {
        hash_combine(seed, to);
        hash_combine(seed, m.hash());
      }
      return seed;
    }
  };

  NodeId canonicalize(std::uint32_t idx) {
    const TrieNode& n = trie_->nodes()[idx];
    Key key;
    key.dev = n.dev;
    key.accept = n.accept;
    for (const auto& [dev, child] : n.children) {
      key.edges.emplace_back(canon_[child],
                             trie_->nodes()[child].edge_scenes);
    }
    std::sort(key.edges.begin(), key.edges.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    const auto it = interned_.find(key);
    if (it != interned_.end()) return it->second;

    const NodeId id = dag_->add_node(n.dev);
    dag_->node(id).accept = n.accept;
    for (const auto& [to, mask] : key.edges) {
      dag_->add_edge(id, to, mask);
    }
    interned_.emplace(std::move(key), id);
    return id;
  }

  const Trie* trie_;
  DpvNet* dag_;
  std::vector<NodeId> canon_;
  std::unordered_map<Key, NodeId, KeyHash> interned_;
};

}  // namespace

std::uint32_t shortest_matching(const topo::Topology& topo,
                                const regex::Dfa& dfa, DeviceId ingress,
                                const std::unordered_set<LinkId>& failed) {
  if (dfa.start() == regex::Dfa::kDead) return kUnreachableLen;
  const std::uint32_t q0 = dfa.next(dfa.start(), ingress);
  if (q0 == regex::Dfa::kDead) return kUnreachableLen;

  const auto nq = static_cast<std::uint32_t>(dfa.state_count());
  std::vector<std::uint32_t> dist(topo.device_count() * nq, kUnreachableLen);
  std::deque<std::pair<DeviceId, std::uint32_t>> work;
  dist[ingress * nq + q0] = 0;
  work.emplace_back(ingress, q0);
  if (dfa.accepting(q0)) return 0;
  while (!work.empty()) {
    const auto [dev, q] = work.front();
    work.pop_front();
    const std::uint32_t d = dist[dev * nq + q];
    for (const auto& adj : topo.neighbors(dev)) {
      const DeviceId nd = adj.neighbor;
      if (link_failed(failed, dev, nd)) continue;
      const std::uint32_t nqs = dfa.next(q, nd);
      if (nqs == regex::Dfa::kDead) continue;
      if (dist[nd * nq + nqs] != kUnreachableLen) continue;
      dist[nd * nq + nqs] = d + 1;
      if (dfa.accepting(nqs)) return d + 1;
      work.emplace_back(nd, nqs);
    }
  }
  return kUnreachableLen;
}

DpvNet build_dpvnet(const topo::Topology& topo, const spec::Invariant& inv,
                    const BuildOptions& opts, BuildStats* stats) {
  return build_dpvnet(topo, inv,
                      expand_scenes(topo, inv.faults, opts.max_scenes), opts,
                      stats);
}

// Parallel-by-phases construction. A "unit" is one (atom, ingress) pair:
// §6 reuse never crosses units, so units are fully independent. Within a
// unit the reuse decision for a scene depends only on the scene subset
// structure and each scene's `shortest` value — never on enumerated paths —
// so the phases are:
//   A (parallel)  per-unit shortest lengths for every scene;
//   B (serial)    reuse-source decisions, identical to the serial walk;
//   C (parallel)  fresh product enumerations, one task per (unit, scene);
//   D (serial)    merge: intern paths into the shared pool and apply reuse
//                 filters in exact (atom, ingress, scene, path) order;
//   E (serial)    trie + DAWG compaction, unchanged.
// Phase D visiting results in the serial order makes pool ids, atom masks,
// trie shape, and hence DAG node numbering byte-identical to the inline
// build regardless of worker scheduling. Exceptions from phase-C tasks
// rethrow lowest-task-index first (core::Executor contract), which is the
// same scene the serial walk would have failed on.
DpvNet build_dpvnet(const topo::Topology& topo, const spec::Invariant& inv,
                    const std::vector<spec::FaultScene>& scenes,
                    const BuildOptions& opts, BuildStats* stats) {
  TLK_SPAN("planner.product");
  const auto atoms = internal::prepare_atoms(inv, opts.dfa_builder);
  const std::size_t arity = atoms.size();
  const std::size_t n_scenes = scenes.size();
  core::Executor& exec =
      opts.executor != nullptr ? *opts.executor : core::serial_executor();

  DpvNet dag(topo, arity, n_scenes);

  // Failed-link sets are per-scene, shared by every unit.
  std::vector<std::unordered_set<LinkId>> failed(n_scenes);
  for (std::size_t si = 0; si < n_scenes; ++si) {
    failed[si] = internal::failed_set(scenes[si]);
  }

  struct Unit {
    std::size_t ai = 0;
    DeviceId ingress = kNoDevice;
  };
  std::vector<Unit> units;
  units.reserve(arity * inv.ingress_set.size());
  for (std::size_t ai = 0; ai < arity; ++ai) {
    for (const DeviceId ingress : inv.ingress_set) {
      units.push_back(Unit{ai, ingress});
    }
  }

  // Phase A: shortest matching length per (unit, scene).
  std::vector<std::vector<std::uint32_t>> shortest(units.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(units.size());
    for (std::size_t ui = 0; ui < units.size(); ++ui) {
      tasks.emplace_back([&, ui] {
        const AtomAutomaton& atom = atoms[units[ui].ai];
        auto& row = shortest[ui];
        row.resize(n_scenes, kUnreachableLen);
        for (std::size_t si = 0; si < n_scenes; ++si) {
          row[si] =
              shortest_matching(topo, atom.dfa, units[ui].ingress, failed[si]);
        }
      });
    }
    exec.run_all(std::move(tasks));
  }

  // Phase B: §6 reuse decisions — the largest earlier subset scene whose
  // filter values (i.e. `shortest`, when symbolic filters exist) match.
  constexpr std::size_t kFresh = ~std::size_t{0};
  constexpr std::size_t kNoPaths = kFresh - 1;
  std::vector<std::vector<std::size_t>> reuse_from(
      units.size(), std::vector<std::size_t>(n_scenes, kNoPaths));
  for (std::size_t ui = 0; ui < units.size(); ++ui) {
    const AtomAutomaton& atom = atoms[units[ui].ai];
    for (std::size_t si = 0; si < n_scenes; ++si) {
      if (shortest[ui][si] == kUnreachableLen) continue;
      std::size_t best = kFresh;
      if (opts.scene_reuse) {
        for (std::size_t sj = 0; sj < si; ++sj) {
          if (!scenes[si].superset_of(scenes[sj])) continue;
          if (atom.symbolic && shortest[ui][sj] != shortest[ui][si]) continue;
          if (best == kFresh ||
              scenes[sj].failed.size() > scenes[best].failed.size()) {
            best = sj;
          }
        }
      }
      reuse_from[ui][si] = best;
    }
  }

  // Phase C: fresh enumerations, one task per (unit, scene) in serial
  // order (so a cap exception surfaces from the earliest serial scene).
  std::vector<std::vector<std::vector<Path>>> enumerated(
      units.size(), std::vector<std::vector<Path>>(n_scenes));
  {
    std::vector<std::function<void()>> tasks;
    for (std::size_t ui = 0; ui < units.size(); ++ui) {
      for (std::size_t si = 0; si < n_scenes; ++si) {
        if (reuse_from[ui][si] != kFresh) continue;
        tasks.emplace_back([&, ui, si] {
          const AtomAutomaton& atom = atoms[units[ui].ai];
          const ProductDistances dist(topo, atom.dfa, failed[si]);
          Enumerator en(topo, atom, failed[si], dist, shortest[ui][si],
                        opts.max_paths);
          enumerated[ui][si] = en.run(units[ui].ingress);
        });
      }
    }
    exec.run_all(std::move(tasks));
  }

  // Phase D: serial merge in exact (atom, ingress, scene, path) order.
  PathPool pool;
  // path id -> per-atom scene masks (ordered map: deterministic trie
  // insertion order, hence deterministic node numbering).
  std::map<std::uint32_t, std::vector<SceneMask>> atom_masks;
  std::size_t scenes_enumerated = 0;
  std::size_t scenes_reused = 0;

  // Tracks (scene, ingress) pairs where no atom had a valid path.
  std::map<std::pair<std::size_t, DeviceId>, std::size_t> empty_count;

  for (std::size_t ui = 0; ui < units.size(); ++ui) {
    const std::size_t ai = units[ui].ai;
    const DeviceId ingress = units[ui].ingress;
    std::vector<std::vector<std::uint32_t>> scene_pids(n_scenes);
    for (std::size_t si = 0; si < n_scenes; ++si) {
      std::vector<std::uint32_t>& pids = scene_pids[si];
      const std::size_t src = reuse_from[ui][si];
      if (src == kFresh) {
        ++scenes_enumerated;
        for (auto& p : enumerated[ui][si]) {
          pids.push_back(pool.intern(std::move(p)));
        }
        enumerated[ui][si].clear();
        if (pool.size() > opts.max_paths) {
          throw Error("valid-path pool exceeds max_paths cap");
        }
      } else if (src != kNoPaths) {
        ++scenes_reused;
        for (const std::uint32_t pid : scene_pids[src]) {
          const Path& p = pool.get(pid);
          bool ok = true;
          for (std::size_t h = 0; h + 1 < p.size(); ++h) {
            if (link_failed(failed[si], p[h], p[h + 1])) {
              ok = false;
              break;
            }
          }
          if (ok) pids.push_back(pid);
        }
      }

      if (pids.empty()) {
        auto& cnt = empty_count[{si, ingress}];
        ++cnt;
        if (cnt == arity) dag.intolerable.emplace_back(si, ingress);
      }

      for (const std::uint32_t pid : pids) {
        auto [it, inserted] = atom_masks.try_emplace(pid);
        if (inserted) {
          it->second.assign(arity, SceneMask(n_scenes));
        }
        it->second[ai].set(si);
      }
    }
  }

  // Compact all labeled paths into the DAG.
  Trie trie(arity, n_scenes);
  for (const auto& [pid, masks] : atom_masks) {
    SceneMask any(n_scenes);
    for (const auto& m : masks) any |= m;
    trie.insert(pool.get(pid), masks, any);
  }
  Compactor compactor(trie, dag);
  const auto sources = compactor.run();

  for (const DeviceId ingress : inv.ingress_set) {
    const auto it = sources.find(ingress);
    dag.add_source(ingress, it == sources.end() ? kNoNode : it->second);
  }
  dag.finalize();

  if (stats != nullptr) {
    stats->scenes = n_scenes;
    stats->paths = pool.size();
    stats->trie_nodes = trie.nodes().size();
    stats->dag_nodes = dag.node_count();
    stats->scenes_enumerated = scenes_enumerated;
    stats->scenes_reused = scenes_reused;
  }
  return dag;
}

}  // namespace tulkun::dpvnet
