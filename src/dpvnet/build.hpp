// DPVNet construction entry points (planner side).
#pragma once

#include <cstddef>
#include <functional>

#include "core/executor.hpp"
#include "dpvnet/dpvnet.hpp"
#include "regex/dfa.hpp"

namespace tulkun::dpvnet {

struct BuildOptions {
  /// Hard cap on enumerated valid paths (across atoms/scenes); construction
  /// throws Error beyond it rather than silently truncating.
  std::size_t max_paths = 5'000'000;
  /// Hard cap on concrete fault scenes expanded from `any k`.
  std::size_t max_scenes = 4096;
  /// §6 subset-scene reuse (ablation toggle: off forces a fresh
  /// enumeration per scene).
  bool scene_reuse = true;
  /// Fans the shortest-length and fresh-enumeration phases out over this
  /// executor; the merge stays serial so the result is byte-identical to
  /// the inline build. Null = run everything inline.
  core::Executor* executor = nullptr;
  /// Memoized regex -> minimized-DFA hook (planner::DfaCache::builder());
  /// null compiles each atom fresh. Must be thread-safe when `executor` is
  /// set: atom compilation may move onto worker threads.
  std::function<regex::Dfa(const spec::PathExpr&)> dfa_builder;
};

struct BuildStats {
  std::size_t scenes = 0;
  std::size_t paths = 0;            // distinct valid paths (all scenes)
  std::size_t trie_nodes = 0;
  std::size_t dag_nodes = 0;
  std::size_t scenes_enumerated = 0;  // scenes needing a fresh search
  std::size_t scenes_reused = 0;      // scenes served by §6 reuse
};

/// Expands a FaultSpec into concrete scenes. Index 0 is always the
/// no-failure scene; explicit scenes follow, then `any k` combinations of
/// 1..k failed links (deduplicated), in ascending failure count.
/// Throws Error when the expansion exceeds `max_scenes`.
[[nodiscard]] std::vector<spec::FaultScene> expand_scenes(
    const topo::Topology& topo, const spec::FaultSpec& faults,
    std::size_t max_scenes);

/// Builds the (fault-tolerant) DPVNet of `inv` over `topo`: enumerates the
/// valid paths of every (atom, ingress, scene) with automaton/length
/// pruning and §6 scene reuse, then compacts them into a minimal DAG.
/// Throws Error when an exist/subset atom is unbounded or caps are hit.
[[nodiscard]] DpvNet build_dpvnet(const topo::Topology& topo,
                                  const spec::Invariant& inv,
                                  const BuildOptions& opts = {},
                                  BuildStats* stats = nullptr);

/// Same, over caller-expanded scenes (plan pipelines expand once and feed
/// both the planner's warning pass and construction).
[[nodiscard]] DpvNet build_dpvnet(const topo::Topology& topo,
                                  const spec::Invariant& inv,
                                  const std::vector<spec::FaultScene>& scenes,
                                  const BuildOptions& opts = {},
                                  BuildStats* stats = nullptr);

/// Shortest hop count of a path from `ingress` accepted by `dfa` in the
/// topology minus `failed` links; kUnreachable if none.
inline constexpr std::uint32_t kUnreachableLen = ~0U;
[[nodiscard]] std::uint32_t shortest_matching(
    const topo::Topology& topo, const regex::Dfa& dfa, DeviceId ingress,
    const std::unordered_set<LinkId>& failed);

}  // namespace tulkun::dpvnet
