// DPVNet (§4.1): a DAG compactly representing every valid path of an
// invariant, with nodes mapped (1-to-many) onto network devices.
//
// Construction strategy. The paper multiplies the path regex's automaton
// with the topology and minimizes; its planner enumerates valid paths per
// fault scene (§6). We follow the enumeration formulation, which is exact
// for every invariant this library accepts (delivered traces are always
// simple paths — within one universe each device applies a single action,
// so a revisited device loops forever): valid paths are enumerated with
// DFA + length-filter pruning and compacted into a minimal DAG by suffix
// sharing (DAWG minimization — the paper's "state minimization" step).
// Nodes accepting for different regex atoms of a compound invariant carry
// distinct acceptance masks, which subsumes the paper's virtual-destination
// transformation (§4.3) without materializing virtual devices.
//
// Fault tolerance. Every edge carries a scene mask: the set of operator
// fault scenes in which the edge lies on some valid path. Because the DAG
// is built from the labeled path trie and suffix-merging keys on masks,
// the scene-s subgraph's source-to-destination paths are exactly the valid
// paths of scene s.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "spec/ast.hpp"
#include "topo/topology.hpp"

namespace tulkun::dpvnet {

/// Dynamic bitset of fault scenes. Scene 0 is always "no failure".
class SceneMask {
 public:
  SceneMask() = default;
  explicit SceneMask(std::size_t n_scenes)
      : bits_((n_scenes + 63) / 64, 0) {}

  void set(std::size_t i) { bits_[i / 64] |= (1ULL << (i % 64)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return i / 64 < bits_.size() && (bits_[i / 64] >> (i % 64)) & 1ULL;
  }
  [[nodiscard]] bool any() const;
  SceneMask& operator|=(const SceneMask& o);

  friend bool operator==(const SceneMask&, const SceneMask&) = default;

  [[nodiscard]] std::size_t hash() const;

 private:
  std::vector<std::uint64_t> bits_;
};

/// A downstream edge of a DPVNet node.
struct DpvEdge {
  NodeId to = kNoNode;
  SceneMask scenes;  // scenes in which this edge is on a valid path
};

struct DpvNode {
  DeviceId dev = kNoDevice;
  std::uint32_t copy = 0;       // disambiguates nodes of the same device
  std::vector<DpvEdge> down;    // toward destinations
  std::vector<NodeId> up;       // derived reverse edges
  /// accept[i] = scenes in which some valid path of atom i ends here.
  /// Empty vector when no path ends at this node.
  std::vector<SceneMask> accept;
  SceneMask scenes;             // scenes in which this node is on a valid path

  [[nodiscard]] bool accepting() const { return !accept.empty(); }
  [[nodiscard]] bool accepts(std::size_t atom, std::size_t scene) const {
    return atom < accept.size() && accept[atom].test(scene);
  }
};

/// The DAG. Node 0.. in topological order is NOT guaranteed; use
/// reverse_topological() for counting.
class DpvNet {
 public:
  DpvNet(const topo::Topology& topo, std::size_t arity, std::size_t n_scenes)
      : topo_(&topo), arity_(arity), n_scenes_(n_scenes) {}

  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }
  [[nodiscard]] std::size_t arity() const { return arity_; }
  [[nodiscard]] std::size_t scene_count() const { return n_scenes_; }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const DpvNode& node(NodeId id) const {
    TULKUN_ASSERT(id < nodes_.size());
    return nodes_[id];
  }
  [[nodiscard]] DpvNode& node(NodeId id) {
    TULKUN_ASSERT(id < nodes_.size());
    return nodes_[id];
  }

  NodeId add_node(DeviceId dev);

  /// Adds a downstream edge (from -> to), merging scene masks if present.
  void add_edge(NodeId from, NodeId to, const SceneMask& scenes);

  /// Source node for each ingress of the invariant (kNoNode when the
  /// ingress has no valid path in any scene).
  [[nodiscard]] const std::vector<std::pair<DeviceId, NodeId>>& sources()
      const {
    return sources_;
  }
  void add_source(DeviceId ingress, NodeId node) {
    sources_.emplace_back(ingress, node);
  }

  /// Node label like "B2" (device name + copy index), as in Figure 2c.
  [[nodiscard]] std::string label(NodeId id) const;

  /// Node ids in reverse topological order (destinations first), i.e. a
  /// node appears after all its downstream neighbors.
  [[nodiscard]] std::vector<NodeId> reverse_topological() const;

  /// Node ids mapped to a given device.
  [[nodiscard]] std::vector<NodeId> nodes_of_device(DeviceId dev) const;

  /// Recomputes up-edge lists and node scene masks from down edges and
  /// validates acyclicity (throws InternalError on a cycle).
  void finalize();

  /// Every source-to-acceptance path in scene `scene`, as device
  /// sequences with their atom acceptance masks (testing/debug; exponential
  /// in general).
  struct PathOut {
    std::vector<DeviceId> devices;
    std::uint64_t accept_mask = 0;
  };
  [[nodiscard]] std::vector<PathOut> all_paths(std::size_t scene) const;

  /// Devices that lie on EVERY source-to-acceptance path of a scene — the
  /// §7 condition under which an exist-operator invariant admits local
  /// verification with empty minimal counting information (the device is a
  /// cut of the valid-path set, like A in the Figure 2a example).
  [[nodiscard]] std::vector<DeviceId> cut_devices(std::size_t scene) const;

  /// Intolerable scenes discovered during construction (no valid path for
  /// at least one ingress).
  std::vector<std::pair<std::size_t, DeviceId>> intolerable;

 private:
  const topo::Topology* topo_;
  std::size_t arity_;
  std::size_t n_scenes_;
  std::vector<DpvNode> nodes_;
  std::vector<std::pair<DeviceId, NodeId>> sources_;
};

}  // namespace tulkun::dpvnet
