// PacketSet: a value-semantic set of packet headers with a two-tier
// representation.
//
// This is the predicate type used throughout Tulkun: LEC table keys, DVM
// message payloads, invariant packet spaces. Tier 1 is an interned
// dst-interval atom set (pred::AtomStore) carried by every predicate that
// is single-field dst-prefix-expressible; set operations between two
// atom-backed sets run as interval merges with zero BDD work. Tier 2 is
// the canonical ROBDD, built lazily on first ref() and required the moment
// a genuinely multi-field predicate (src/port/proto/rewrite) enters an
// operation — the dynamic demotion guard. Promotion happens on wrap():
// BDDs arriving from the wire are converted back to atoms when dst-only.
//
// All sets sharing a PacketSpace (one BDD manager + one atom store)
// compose in O(atoms) or O(BDD) time, and equality is O(1) on both tiers
// thanks to hash-consing. The global pred::set_atom_path_enabled() switch
// forces every operation onto the BDD tier (sets keep their atom ids, so
// the toggle is safe mid-run in both directions).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/manager.hpp"
#include "packet/fields.hpp"
#include "pred/atom_set.hpp"

namespace tulkun::packet {

class PacketSet;

/// Owns the BDD manager and atom store for one verification session's
/// packet universe and provides constructors for field-level predicates.
class PacketSpace {
 public:
  PacketSpace()
      : mgr_(std::make_unique<bdd::Manager>(Layout::kNumVars)),
        atoms_(std::make_unique<pred::AtomStore>(*mgr_)) {}

  PacketSpace(const PacketSpace&) = delete;
  PacketSpace& operator=(const PacketSpace&) = delete;
  // Movable: the manager and store live behind stable pointers, so
  // PacketSets remain valid across moves of their space.
  PacketSpace(PacketSpace&&) = default;
  PacketSpace& operator=(PacketSpace&&) = default;

  [[nodiscard]] PacketSet all();
  [[nodiscard]] PacketSet none();

  /// Packets whose destination IP falls inside `prefix`.
  [[nodiscard]] PacketSet dst_prefix(const Ipv4Prefix& prefix);
  [[nodiscard]] PacketSet src_prefix(const Ipv4Prefix& prefix);

  /// Packets with an exact field value.
  [[nodiscard]] PacketSet dst_port(std::uint16_t port);
  [[nodiscard]] PacketSet src_port(std::uint16_t port);
  [[nodiscard]] PacketSet proto(std::uint8_t proto);

  /// Packets whose field value lies in [lo, hi] (inclusive).
  [[nodiscard]] PacketSet field_range(Field f, std::uint32_t lo,
                                      std::uint32_t hi);

  /// Packets whose destination address lies in a canonical half-open
  /// interval list (the atom wire form; sorted, disjoint, non-adjacent).
  [[nodiscard]] PacketSet from_intervals(std::vector<Interval> ivs);

  /// Wraps a raw BDD ref (used by the wire codec). Attempts atom promotion
  /// when the fast path is enabled.
  [[nodiscard]] PacketSet wrap(bdd::NodeRef ref);

  [[nodiscard]] bdd::Manager& manager() { return *mgr_; }
  [[nodiscard]] const bdd::Manager& manager() const { return *mgr_; }
  [[nodiscard]] pred::AtomStore& atoms() { return *atoms_; }

 private:
  /// BDD with field bits equal to `value` over `width` bits at `offset`.
  bdd::NodeRef exact_bits(std::uint32_t offset, std::uint32_t width,
                          std::uint32_t value);

  std::unique_ptr<bdd::Manager> mgr_;
  std::unique_ptr<pred::AtomStore> atoms_;
};

/// An immutable set of packets. Cheap to copy (three words + two ids).
class PacketSet {
 public:
  PacketSet() = default;  // a detached, empty set usable only for reassignment

  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
  [[nodiscard]] bool empty() const {
    if (atom_ != pred::kNoAtom) return atom_ == pred::kAtomEmpty;
    return ref_ == bdd::kFalse;
  }
  [[nodiscard]] bool is_all() const {
    if (atom_ != pred::kNoAtom) return atom_ == pred::kAtomAll;
    return ref_ == bdd::kTrue;
  }

  [[nodiscard]] PacketSet operator&(const PacketSet& o) const;
  [[nodiscard]] PacketSet operator|(const PacketSet& o) const;
  /// Set difference: packets in *this but not in o.
  [[nodiscard]] PacketSet operator-(const PacketSet& o) const;
  [[nodiscard]] PacketSet operator~() const;

  PacketSet& operator&=(const PacketSet& o) { return *this = *this & o; }
  PacketSet& operator|=(const PacketSet& o) { return *this = *this | o; }
  PacketSet& operator-=(const PacketSet& o) { return *this = *this - o; }

  [[nodiscard]] bool intersects(const PacketSet& o) const;
  [[nodiscard]] bool subset_of(const PacketSet& o) const;

  /// O(1): both tiers are hash-consed, so structural equality is id
  /// equality whenever the representations match; mixed-tier comparisons
  /// (rare: only after mid-run toggling) materialize.
  friend bool operator==(const PacketSet& a, const PacketSet& b) {
    if (a.mgr_ != b.mgr_) return false;
    if (a.atom_ != pred::kNoAtom && b.atom_ != pred::kNoAtom) {
      return a.atom_ == b.atom_;
    }
    return a.ref() == b.ref();
  }

  /// Number of headers in the set (exact on the atom tier; approximate
  /// beyond 2^53 on the BDD tier).
  [[nodiscard]] double count() const;

  /// Fraction of the full header space covered, in [0,1].
  [[nodiscard]] double fraction() const;

  /// BDD node count (used for message-size accounting). Materializes.
  [[nodiscard]] std::size_t bdd_nodes() const;

  /// The canonical ROBDD, built on demand for atom-backed sets.
  [[nodiscard]] bdd::NodeRef ref() const {
    if (!has_ref_) materialize_ref();
    return ref_;
  }
  /// Non-materializing observer for gc root collection: the ref this set
  /// currently pins in the manager (kFalse when none). Lazily materialized
  /// refs cannot be un-pinned (the set caches them), so every reachable
  /// PacketSet must surface here when enumerating gc roots.
  [[nodiscard]] bdd::NodeRef ref_if_materialized() const {
    return has_ref_ ? ref_ : bdd::kFalse;
  }
  [[nodiscard]] bdd::Manager* manager() const { return mgr_; }

  /// Atom-tier id (pred::kNoAtom when the set is BDD-only).
  [[nodiscard]] pred::AtomRef atom_ref() const { return atom_; }
  [[nodiscard]] pred::AtomStore* atom_store() const { return store_; }

  /// Stable hash usable as an unordered_map key (manager-local).
  [[nodiscard]] std::size_t hash() const {
    return std::hash<bdd::NodeRef>{}(ref());
  }

 private:
  friend class PacketSpace;
  // NodeRef and AtomRef are both u32; named factories avoid ambiguity.
  static PacketSet from_ref(bdd::Manager* mgr, pred::AtomStore* store,
                            bdd::NodeRef ref) {
    PacketSet p;
    p.mgr_ = mgr;
    p.store_ = store;
    p.ref_ = ref;
    p.has_ref_ = true;
    return p;
  }
  static PacketSet from_atom(bdd::Manager* mgr, pred::AtomStore* store,
                             pred::AtomRef atom) {
    PacketSet p;
    p.mgr_ = mgr;
    p.store_ = store;
    p.atom_ = atom;
    p.has_ref_ = false;
    return p;
  }
  static PacketSet from_both(bdd::Manager* mgr, pred::AtomStore* store,
                             bdd::NodeRef ref, pred::AtomRef atom) {
    PacketSet p = from_ref(mgr, store, ref);
    p.atom_ = atom;
    return p;
  }
  void materialize_ref() const;

  bdd::Manager* mgr_ = nullptr;
  pred::AtomStore* store_ = nullptr;
  // The BDD tier is lazy: atom-backed sets only build their ROBDD when a
  // multi-field operand demotes the operation or a caller needs ref().
  mutable bdd::NodeRef ref_ = bdd::kFalse;
  mutable bool has_ref_ = true;  // a detached default set is "empty"
  pred::AtomRef atom_ = pred::kNoAtom;
};

/// Hash functor for using PacketSet as an unordered container key.
struct PacketSetHash {
  std::size_t operator()(const PacketSet& p) const noexcept {
    return p.hash();
  }
};

/// The destination-IP prefix hull of `p`: the longest IPv4 prefix that
/// contains every packet in the set. Exact and O(prefix length) on both
/// tiers: the atom tier takes the common prefix of its address extremes;
/// the BDD tier walks the maximal chain of forced decisions from the root
/// (dst-IP bits are the topmost variables). Sets unconstrained on dst-IP
/// (or constrained only below a union of prefixes) hull to 0.0.0.0/0;
/// callers treat a /0 hull as "index gives no pruning" and fall back to
/// scanning. Requires a non-empty, attached set.
[[nodiscard]] Ipv4Prefix dst_prefix_hull(const PacketSet& p);

}  // namespace tulkun::packet
