// PacketSet: a value-semantic set of packet headers backed by a BDD.
//
// This is the predicate type used throughout Tulkun: LEC table keys, DVM
// message payloads, invariant packet spaces. All sets sharing a
// PacketSpace (one BDD manager) compose in O(BDD) time, and equality is
// O(1) thanks to hash-consing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/manager.hpp"
#include "packet/fields.hpp"

namespace tulkun::packet {

class PacketSet;

/// Owns the BDD manager for one verification session's packet universe and
/// provides constructors for field-level predicates.
class PacketSpace {
 public:
  PacketSpace() : mgr_(std::make_unique<bdd::Manager>(Layout::kNumVars)) {}

  PacketSpace(const PacketSpace&) = delete;
  PacketSpace& operator=(const PacketSpace&) = delete;
  // Movable: the manager lives behind a stable pointer, so PacketSets
  // remain valid across moves of their space.
  PacketSpace(PacketSpace&&) = default;
  PacketSpace& operator=(PacketSpace&&) = default;

  [[nodiscard]] PacketSet all();
  [[nodiscard]] PacketSet none();

  /// Packets whose destination IP falls inside `prefix`.
  [[nodiscard]] PacketSet dst_prefix(const Ipv4Prefix& prefix);
  [[nodiscard]] PacketSet src_prefix(const Ipv4Prefix& prefix);

  /// Packets with an exact field value.
  [[nodiscard]] PacketSet dst_port(std::uint16_t port);
  [[nodiscard]] PacketSet src_port(std::uint16_t port);
  [[nodiscard]] PacketSet proto(std::uint8_t proto);

  /// Packets whose field value lies in [lo, hi] (inclusive).
  [[nodiscard]] PacketSet field_range(Field f, std::uint32_t lo,
                                      std::uint32_t hi);

  /// Wraps a raw BDD ref (used by the wire codec).
  [[nodiscard]] PacketSet wrap(bdd::NodeRef ref);

  [[nodiscard]] bdd::Manager& manager() { return *mgr_; }
  [[nodiscard]] const bdd::Manager& manager() const { return *mgr_; }

 private:
  /// BDD with field bits equal to `value` over `width` bits at `offset`.
  bdd::NodeRef exact_bits(std::uint32_t offset, std::uint32_t width,
                          std::uint32_t value);

  std::unique_ptr<bdd::Manager> mgr_;
};

/// An immutable set of packets. Cheap to copy (manager pointer + node ref).
class PacketSet {
 public:
  PacketSet() = default;  // a detached, empty set usable only for reassignment

  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
  [[nodiscard]] bool empty() const { return ref_ == bdd::kFalse; }
  [[nodiscard]] bool is_all() const { return ref_ == bdd::kTrue; }

  [[nodiscard]] PacketSet operator&(const PacketSet& o) const;
  [[nodiscard]] PacketSet operator|(const PacketSet& o) const;
  /// Set difference: packets in *this but not in o.
  [[nodiscard]] PacketSet operator-(const PacketSet& o) const;
  [[nodiscard]] PacketSet operator~() const;

  PacketSet& operator&=(const PacketSet& o) { return *this = *this & o; }
  PacketSet& operator|=(const PacketSet& o) { return *this = *this | o; }
  PacketSet& operator-=(const PacketSet& o) { return *this = *this - o; }

  [[nodiscard]] bool intersects(const PacketSet& o) const {
    return !(*this & o).empty();
  }
  [[nodiscard]] bool subset_of(const PacketSet& o) const;

  /// O(1): canonical BDDs make structural equality reference equality.
  friend bool operator==(const PacketSet& a, const PacketSet& b) {
    return a.mgr_ == b.mgr_ && a.ref_ == b.ref_;
  }

  /// Number of headers in the set (approximate beyond 2^53).
  [[nodiscard]] double count() const;

  /// Fraction of the full header space covered, in [0,1].
  [[nodiscard]] double fraction() const;

  /// BDD node count (used for message-size accounting).
  [[nodiscard]] std::size_t bdd_nodes() const;

  [[nodiscard]] bdd::NodeRef ref() const { return ref_; }
  [[nodiscard]] bdd::Manager* manager() const { return mgr_; }

  /// Stable hash usable as an unordered_map key (manager-local).
  [[nodiscard]] std::size_t hash() const {
    return std::hash<bdd::NodeRef>{}(ref_);
  }

 private:
  friend class PacketSpace;
  PacketSet(bdd::Manager* mgr, bdd::NodeRef ref) : mgr_(mgr), ref_(ref) {}

  bdd::Manager* mgr_ = nullptr;
  bdd::NodeRef ref_ = bdd::kFalse;
};

/// Hash functor for using PacketSet as an unordered container key.
struct PacketSetHash {
  std::size_t operator()(const PacketSet& p) const noexcept {
    return p.hash();
  }
};

/// The destination-IP prefix hull of `p`: the longest IPv4 prefix that
/// contains every packet in the set. Exact and O(prefix length): dst-IP
/// bits are the topmost BDD variables, so the hull is the maximal chain of
/// forced decisions from the root. Sets unconstrained on dst-IP (or
/// constrained only below a union of prefixes) hull to 0.0.0.0/0; callers
/// treat a /0 hull as "index gives no pruning" and fall back to scanning.
/// Requires a non-empty, attached set.
[[nodiscard]] Ipv4Prefix dst_prefix_hull(const PacketSet& p);

}  // namespace tulkun::packet
