// Packet header model.
//
// Tulkun's data plane matches on a TCP/IP 5-tuple. Each header field maps to
// a contiguous block of BDD variables (most-significant bit first), giving a
// fixed global variable order:
//
//   dstIP[32] | srcIP[32] | dstPort[16] | srcPort[16] | proto[8]
//
// dstIP comes first because real FIBs are dominated by destination-prefix
// rules; keeping those bits topmost keeps the BDDs shallow.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tulkun::packet {

/// The five match fields, in variable-order position.
enum class Field : std::uint8_t { DstIp, SrcIp, DstPort, SrcPort, Proto };

/// Bit layout of the header within the BDD variable space.
struct Layout {
  static constexpr std::uint32_t kDstIpOffset = 0;
  static constexpr std::uint32_t kDstIpWidth = 32;
  static constexpr std::uint32_t kSrcIpOffset = 32;
  static constexpr std::uint32_t kSrcIpWidth = 32;
  static constexpr std::uint32_t kDstPortOffset = 64;
  static constexpr std::uint32_t kDstPortWidth = 16;
  static constexpr std::uint32_t kSrcPortOffset = 80;
  static constexpr std::uint32_t kSrcPortWidth = 16;
  static constexpr std::uint32_t kProtoOffset = 96;
  static constexpr std::uint32_t kProtoWidth = 8;
  static constexpr std::uint32_t kNumVars = 104;

  static constexpr std::uint32_t offset(Field f) {
    switch (f) {
      case Field::DstIp: return kDstIpOffset;
      case Field::SrcIp: return kSrcIpOffset;
      case Field::DstPort: return kDstPortOffset;
      case Field::SrcPort: return kSrcPortOffset;
      case Field::Proto: return kProtoOffset;
    }
    return 0;
  }

  static constexpr std::uint32_t width(Field f) {
    switch (f) {
      case Field::DstIp: return kDstIpWidth;
      case Field::SrcIp: return kSrcIpWidth;
      case Field::DstPort: return kDstPortWidth;
      case Field::SrcPort: return kSrcPortWidth;
      case Field::Proto: return kProtoWidth;
    }
    return 0;
  }
};

/// An IPv4 prefix such as 10.0.0.0/23. Host bits below the prefix length
/// are required to be zero (enforced by parse/constructor normalization).
struct Ipv4Prefix {
  std::uint32_t addr = 0;  // network byte order conceptually; stored host u32
  std::uint8_t len = 0;    // 0..32

  Ipv4Prefix() = default;
  Ipv4Prefix(std::uint32_t address, std::uint8_t length);

  /// Parses dotted-quad "/len" notation, e.g. "10.0.0.0/23".
  /// Throws Error on malformed input.
  static Ipv4Prefix parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  /// True iff `ip` falls inside this prefix.
  [[nodiscard]] bool contains(std::uint32_t ip) const;

  /// True iff `other` is fully contained in this prefix.
  [[nodiscard]] bool covers(const Ipv4Prefix& other) const;

  /// First / one-past-last covered address, as a half-open interval.
  [[nodiscard]] std::uint64_t range_lo() const { return addr; }
  [[nodiscard]] std::uint64_t range_hi() const {
    return static_cast<std::uint64_t>(addr) + (1ULL << (32 - len));
  }

  friend bool operator==(const Ipv4Prefix&, const Ipv4Prefix&) = default;
  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;
};

/// Parses a dotted-quad IPv4 address. Throws Error on malformed input.
std::uint32_t parse_ipv4(std::string_view text);

/// Formats a host-order u32 as dotted quad.
std::string format_ipv4(std::uint32_t addr);

}  // namespace tulkun::packet
