#include "packet/fields.hpp"

#include <charconv>

#include "core/error.hpp"

namespace tulkun::packet {

namespace {

std::uint32_t mask_for_len(std::uint8_t len) {
  return len == 0 ? 0 : (~0U << (32 - len));
}

std::uint32_t parse_decimal(std::string_view text, std::uint32_t max_value,
                            const char* what) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() ||
      value > max_value) {
    throw Error(std::string("malformed ") + what + ": '" +
                std::string(text) + "'");
  }
  return value;
}

}  // namespace

Ipv4Prefix::Ipv4Prefix(std::uint32_t address, std::uint8_t length)
    : addr(address & mask_for_len(length)), len(length) {
  if (length > 32) {
    throw Error("prefix length out of range: " + std::to_string(length));
  }
}

std::uint32_t parse_ipv4(std::string_view text) {
  std::uint32_t addr = 0;
  std::size_t start = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const std::size_t dot = text.find('.', start);
    const bool last = octet == 3;
    if (last != (dot == std::string_view::npos)) {
      throw Error("malformed IPv4 address: '" + std::string(text) + "'");
    }
    const std::string_view part =
        last ? text.substr(start) : text.substr(start, dot - start);
    addr = (addr << 8) | parse_decimal(part, 255, "IPv4 octet");
    start = dot + 1;
  }
  return addr;
}

std::string format_ipv4(std::uint32_t addr) {
  return std::to_string((addr >> 24) & 0xff) + "." +
         std::to_string((addr >> 16) & 0xff) + "." +
         std::to_string((addr >> 8) & 0xff) + "." +
         std::to_string(addr & 0xff);
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    // A bare address is a /32.
    return Ipv4Prefix(parse_ipv4(text), 32);
  }
  const std::uint32_t addr = parse_ipv4(text.substr(0, slash));
  const std::uint32_t len =
      parse_decimal(text.substr(slash + 1), 32, "prefix length");
  return Ipv4Prefix(addr, static_cast<std::uint8_t>(len));
}

std::string Ipv4Prefix::to_string() const {
  return format_ipv4(addr) + "/" + std::to_string(len);
}

bool Ipv4Prefix::contains(std::uint32_t ip) const {
  return (ip & mask_for_len(len)) == addr;
}

bool Ipv4Prefix::covers(const Ipv4Prefix& other) const {
  return other.len >= len && contains(other.addr);
}

}  // namespace tulkun::packet
