#include "packet/packet_set.hpp"

#include <cmath>

#include "core/error.hpp"

namespace tulkun::packet {

PacketSet PacketSpace::all() {
  return PacketSet::from_both(mgr_.get(), atoms_.get(), bdd::kTrue,
                              pred::kAtomAll);
}

PacketSet PacketSpace::none() {
  return PacketSet::from_both(mgr_.get(), atoms_.get(), bdd::kFalse,
                              pred::kAtomEmpty);
}

PacketSet PacketSpace::wrap(bdd::NodeRef ref) {
  if (pred::atom_path_enabled()) {
    const pred::AtomRef atom = atoms_->promote(ref);
    if (atom != pred::kNoAtom) {
      return PacketSet::from_both(mgr_.get(), atoms_.get(), ref, atom);
    }
  }
  return PacketSet::from_ref(mgr_.get(), atoms_.get(), ref);
}

bdd::NodeRef PacketSpace::exact_bits(std::uint32_t offset, std::uint32_t width,
                                     std::uint32_t value) {
  // Build bottom-up (LSB first) so each mk() call has its children ready
  // and the chain is a single path through the BDD.
  bdd::NodeRef acc = bdd::kTrue;
  for (std::uint32_t i = 0; i < width; ++i) {
    const std::uint32_t bit_index = width - 1 - i;  // LSB upward
    const std::uint32_t var = offset + bit_index;
    const bool bit = (value >> i) & 1U;
    acc = bit ? mgr_->mk(var, bdd::kFalse, acc)
              : mgr_->mk(var, acc, bdd::kFalse);
  }
  return acc;
}

PacketSet PacketSpace::dst_prefix(const Ipv4Prefix& prefix) {
  if (pred::atom_path_enabled()) {
    // Atom tier only: the ROBDD is built lazily if a multi-field operand
    // ever forces this set onto the BDD tier.
    return PacketSet::from_atom(mgr_.get(), atoms_.get(),
                                atoms_->from_prefix(prefix));
  }
  // Only the top `len` bits are constrained.
  const std::uint32_t value = prefix.len == 0 ? 0 : prefix.addr >> (32 - prefix.len);
  return PacketSet::from_ref(mgr_.get(), atoms_.get(),
                             exact_bits(Layout::kDstIpOffset, prefix.len, value));
}

PacketSet PacketSpace::src_prefix(const Ipv4Prefix& prefix) {
  const std::uint32_t value = prefix.len == 0 ? 0 : prefix.addr >> (32 - prefix.len);
  return PacketSet::from_ref(mgr_.get(), atoms_.get(),
                             exact_bits(Layout::kSrcIpOffset, prefix.len, value));
}

PacketSet PacketSpace::dst_port(std::uint16_t port) {
  return PacketSet::from_ref(
      mgr_.get(), atoms_.get(),
      exact_bits(Layout::kDstPortOffset, Layout::kDstPortWidth, port));
}

PacketSet PacketSpace::src_port(std::uint16_t port) {
  return PacketSet::from_ref(
      mgr_.get(), atoms_.get(),
      exact_bits(Layout::kSrcPortOffset, Layout::kSrcPortWidth, port));
}

PacketSet PacketSpace::proto(std::uint8_t p) {
  return PacketSet::from_ref(
      mgr_.get(), atoms_.get(),
      exact_bits(Layout::kProtoOffset, Layout::kProtoWidth, p));
}

PacketSet PacketSpace::field_range(Field f, std::uint32_t lo,
                                   std::uint32_t hi) {
  TULKUN_ASSERT(lo <= hi);
  const std::uint32_t offset = Layout::offset(f);
  const std::uint32_t width = Layout::width(f);
  TULKUN_ASSERT(width == 32 || hi < (1ULL << width));

  if (f == Field::DstIp && pred::atom_path_enabled()) {
    return PacketSet::from_atom(
        mgr_.get(), atoms_.get(),
        atoms_->from_range(lo, static_cast<std::uint64_t>(hi) + 1));
  }

  // Decompose [lo, hi] into maximal aligned power-of-two blocks (prefixes)
  // and OR their single-path BDDs; at most 2*width blocks.
  bdd::NodeRef acc = bdd::kFalse;
  std::uint64_t cur = lo;
  const std::uint64_t end = static_cast<std::uint64_t>(hi) + 1;
  while (cur < end) {
    // Largest block size aligned at cur that fits in [cur, end).
    std::uint32_t block_bits = 0;
    while (block_bits < width) {
      const std::uint64_t size = 1ULL << (block_bits + 1);
      if ((cur & (size - 1)) != 0 || cur + size > end) break;
      ++block_bits;
    }
    const std::uint32_t prefix_len = width - block_bits;
    const auto value = static_cast<std::uint32_t>(cur >> block_bits);
    acc = mgr_->lor(acc, exact_bits(offset, prefix_len, value));
    cur += 1ULL << block_bits;
  }
  return PacketSet::from_ref(mgr_.get(), atoms_.get(), acc);
}

PacketSet PacketSpace::from_intervals(std::vector<Interval> ivs) {
  const pred::AtomRef atom = atoms_->from_intervals(std::move(ivs));
  if (pred::atom_path_enabled()) {
    return PacketSet::from_atom(mgr_.get(), atoms_.get(), atom);
  }
  return PacketSet::from_ref(mgr_.get(), atoms_.get(),
                             atoms_->materialize(atom));
}

namespace {
bdd::Manager& same_manager(const PacketSet& a, const PacketSet& b) {
  TULKUN_ASSERT(a.manager() != nullptr);
  TULKUN_ASSERT(a.manager() == b.manager());
  return *a.manager();
}

/// Fast-path dispatch: both operands atom-backed and the switch is on.
bool use_atoms(const PacketSet& a, const PacketSet& b) {
  return a.atom_ref() != pred::kNoAtom && b.atom_ref() != pred::kNoAtom &&
         pred::atom_path_enabled();
}

bool use_atoms(const PacketSet& a) {
  return a.atom_ref() != pred::kNoAtom && pred::atom_path_enabled();
}

/// A BDD-tier operation demotes the result if any operand carried atoms.
void note_fallback(const PacketSet& a, const PacketSet& b) {
  pred::atom_note_fallback(a.atom_ref() != pred::kNoAtom ||
                           b.atom_ref() != pred::kNoAtom);
}
}  // namespace

void PacketSet::materialize_ref() const {
  TULKUN_ASSERT(store_ != nullptr && atom_ != pred::kNoAtom);
  ref_ = store_->materialize(atom_);
  has_ref_ = true;
}

PacketSet PacketSet::operator&(const PacketSet& o) const {
  auto& mgr = same_manager(*this, o);
  if (use_atoms(*this, o)) {
    pred::atom_note_hit();
    return from_atom(mgr_, store_, store_->intersect(atom_, o.atom_));
  }
  note_fallback(*this, o);
  return from_ref(mgr_, store_, mgr.land(ref(), o.ref()));
}

PacketSet PacketSet::operator|(const PacketSet& o) const {
  auto& mgr = same_manager(*this, o);
  if (use_atoms(*this, o)) {
    pred::atom_note_hit();
    return from_atom(mgr_, store_, store_->unite(atom_, o.atom_));
  }
  note_fallback(*this, o);
  return from_ref(mgr_, store_, mgr.lor(ref(), o.ref()));
}

PacketSet PacketSet::operator-(const PacketSet& o) const {
  auto& mgr = same_manager(*this, o);
  if (use_atoms(*this, o)) {
    pred::atom_note_hit();
    return from_atom(mgr_, store_, store_->subtract(atom_, o.atom_));
  }
  note_fallback(*this, o);
  return from_ref(mgr_, store_, mgr.diff(ref(), o.ref()));
}

PacketSet PacketSet::operator~() const {
  TULKUN_ASSERT(mgr_ != nullptr);
  if (use_atoms(*this)) {
    pred::atom_note_hit();
    return from_atom(mgr_, store_, store_->complement(atom_));
  }
  pred::atom_note_fallback(atom_ != pred::kNoAtom);
  return from_ref(mgr_, store_, mgr_->negate(ref()));
}

bool PacketSet::intersects(const PacketSet& o) const {
  if (use_atoms(*this, o)) {
    pred::atom_note_hit();
    return store_->intersects(atom_, o.atom_);
  }
  return !(*this & o).empty();
}

bool PacketSet::subset_of(const PacketSet& o) const {
  auto& mgr = same_manager(*this, o);
  if (use_atoms(*this, o)) {
    pred::atom_note_hit();
    return store_->subset(atom_, o.atom_);
  }
  note_fallback(*this, o);
  return mgr.implies(ref(), o.ref());
}

double PacketSet::count() const {
  TULKUN_ASSERT(mgr_ != nullptr);
  if (use_atoms(*this)) {
    return store_->header_count(atom_);
  }
  return mgr_->sat_count(ref());
}

double PacketSet::fraction() const {
  TULKUN_ASSERT(mgr_ != nullptr);
  const double total =
      std::pow(2.0, static_cast<double>(mgr_->num_vars()));
  return count() / total;
}

std::size_t PacketSet::bdd_nodes() const {
  TULKUN_ASSERT(mgr_ != nullptr);
  return mgr_->node_count(ref());
}

Ipv4Prefix dst_prefix_hull(const PacketSet& p) {
  TULKUN_ASSERT(p.valid());
  TULKUN_ASSERT(!p.empty());
  if (p.atom_ref() != pred::kNoAtom && pred::atom_path_enabled()) {
    return p.atom_store()->hull(p.atom_ref());
  }
  const bdd::Manager& mgr = *p.manager();
  std::uint32_t addr = 0;
  std::uint8_t len = 0;
  bdd::NodeRef r = p.ref();
  // Walk the chain of forced dst-IP decisions. Variable `len` is the next
  // (MSB-first) dst bit; the chain breaks at the first bit that is skipped
  // (unconstrained) or branches both ways.
  while (r >= 2 && len < Layout::kDstIpWidth) {
    const bdd::Node& n = mgr.node(r);
    if (n.var != Layout::kDstIpOffset + len) break;
    if (n.low == bdd::kFalse) {
      addr |= 1U << (31 - len);
      r = n.high;
    } else if (n.high == bdd::kFalse) {
      r = n.low;
    } else {
      break;
    }
    ++len;
  }
  return Ipv4Prefix{addr, len};
}

}  // namespace tulkun::packet
