// Multi-path invariants (§7): route symmetry between a client site and a
// server site on a WAN — the middlebox-symmetry use case the paper lists
// as the one invariant class outside the single-path language.
//
// On-device verifiers collect the actual forward and return paths and the
// comparator device checks that the return chain is the exact reverse of
// the forward chain (stateful middleboxes break otherwise).
//
// Run:  ./route_symmetry
#include <iostream>

#include "eval/fib_synth.hpp"
#include "runtime/event_sim.hpp"
#include "spec/multipath.hpp"
#include "topo/generators.hpp"

using namespace tulkun;

int main() {
  const auto topo = topo::synthetic_wan("site", 10, 16, 21);
  auto net = eval::synthesize(topo, eval::SynthOptions{1, 0, 21});
  auto& space = net.space();

  const DeviceId client = 0;
  const DeviceId server = 7;
  const auto fwd_space = space.dst_prefix(topo.prefixes(server).front());
  const auto rev_space = space.dst_prefix(topo.prefixes(client).front());

  spec::MultiPathBuiltins mb(topo, space);
  const auto inv =
      mb.route_symmetry(fwd_space, rev_space, client, server);

  planner::Planner planner(topo, space);
  const auto plan = planner.plan_multipath(inv);
  std::cout << "route symmetry " << topo.name(client) << " <-> "
            << topo.name(server) << ": DPVNets "
            << plan.dag_a->node_count() << " + " << plan.dag_b->node_count()
            << " nodes\n";

  runtime::EventSimulator sim(topo, {});
  sim.make_devices(space);
  sim.install_multipath(plan);
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    sim.post_initialize(d, net.table(d), 0.0);
  }
  double now = sim.run();

  const auto show = [&](const char* when) {
    const auto view = sim.device(client).multipath_view(plan.id);
    if (view.has_value()) {
      std::cout << when << ":\n  forward paths:\n";
      for (const auto& p : view->first) {
        std::cout << "    ";
        for (const auto d : p) std::cout << topo.name(d) << " ";
        std::cout << "\n";
      }
      std::cout << "  return paths:\n";
      for (const auto& p : view->second) {
        std::cout << "    ";
        for (const auto d : p) std::cout << topo.name(d) << " ";
        std::cout << "\n";
      }
    }
    const auto violations = sim.violations();
    if (violations.empty()) {
      std::cout << "  => symmetric\n";
    } else {
      std::cout << "  => " << violations.front().reason << "\n";
    }
  };
  show("initial data plane");

  // Perturb: the server reroutes the return traffic through a different
  // neighbor (hot-potato change) — symmetry may break; the comparator
  // re-evaluates incrementally.
  const auto& neighbors = topo.neighbors(server);
  const DeviceId detour = neighbors.back().neighbor;
  fib::Rule reroute;
  reroute.priority = 500;
  reroute.dst_prefix = topo.prefixes(client).front();
  reroute.action = fib::Action::forward(detour);
  std::cout << "\nrerouting return traffic at " << topo.name(server)
            << " via " << topo.name(detour) << "...\n";
  sim.post_rule_update(server, fib::FibUpdate::insert(server, reroute), now);
  sim.run();
  show("after reroute");
  return 0;
}
