// Quickstart: the paper's running example (Figure 2) end to end.
//
// Builds the 5-switch network, specifies the waypoint invariant in the
// Tulkun language, plans the DPVNet, runs the distributed verifiers in the
// event simulator, prints the violation the paper derives in §2.2, applies
// the §2.2.3 rule update, and shows the invariant turning green.
//
// Run:  ./quickstart
#include <iostream>

#include "planner/planner.hpp"
#include "runtime/event_sim.hpp"
#include "spec/parser.hpp"
#include "topo/generators.hpp"

using namespace tulkun;

namespace {

/// The Figure 2a data plane (see tests/testutil/figure2.hpp for how it is
/// reconstructed from the paper's narrative).
fib::NetworkFib figure2_data_plane(const topo::Topology& topo) {
  fib::NetworkFib net(topo);
  auto& space = net.space();
  const auto S = topo.device("S");
  const auto A = topo.device("A");
  const auto B = topo.device("B");
  const auto W = topo.device("W");
  const auto D = topo.device("D");
  const auto p1 = packet::Ipv4Prefix::parse("10.0.0.0/23");
  const auto p2 = packet::Ipv4Prefix::parse("10.0.0.0/24");
  const auto p34 = packet::Ipv4Prefix::parse("10.0.1.0/24");

  const auto add = [&](DeviceId dev, packet::Ipv4Prefix prefix,
                       std::int32_t prio, fib::Action action,
                       std::optional<packet::PacketSet> extra = {}) {
    fib::Rule r;
    r.priority = prio;
    r.dst_prefix = prefix;
    r.extra_match = std::move(extra);
    r.action = std::move(action);
    net.table(dev).insert(r);
  };

  add(S, p1, 10, fib::Action::forward(A));
  add(A, p2, 10, fib::Action::forward_all({B, W}));
  add(A, p34, 20, fib::Action::forward_any({B, W}), space.dst_port(80));
  add(A, p34, 10, fib::Action::forward(W));
  add(B, p34, 10, fib::Action::forward(D));
  add(W, p1, 10, fib::Action::forward(D));
  add(D, p1, 10, fib::Action::deliver());
  return net;
}

void report(const char* when, const std::vector<dvm::Violation>& violations) {
  if (violations.empty()) {
    std::cout << when << ": invariant SATISFIED in all universes\n";
    return;
  }
  std::cout << when << ": invariant VIOLATED —\n";
  for (const auto& v : violations) {
    std::cout << "  at device " << v.device << ", node " << v.node << ": "
              << v.reason << "\n";
  }
}

}  // namespace

int main() {
  // 1. Topology (Figure 2a) and data plane.
  const auto topo = topo::figure2_network();
  auto net = figure2_data_plane(topo);

  // 2. The invariant, in the specification language (Figure 2b): packets
  //    to 10.0.0.0/23 entering at S must reach D via a simple path
  //    through the waypoint W.
  spec::SpecParser parser(topo, net.space());
  auto invariants = parser.parse(
      "invariant waypoint_via_W:\n"
      "  packets: dstIP=10.0.0.0/23\n"
      "  ingress: S\n"
      "  behavior: exist >= 1 : { S .* W .* D ; loop_free }\n");

  // 3. Plan: regex -> DFA -> DPVNet -> per-device counting tasks.
  planner::Planner planner(topo, net.space());
  const auto plan = planner.plan(std::move(invariants.front()));
  std::cout << "DPVNet has " << plan.dag->node_count()
            << " nodes (paper Figure 2c):\n";
  const auto tasks = planner::Planner::decompose(*plan.dag, plan.inv);
  std::cout << planner::Planner::describe_tasks(*plan.dag, tasks);

  // 4. Distributed verification in the event simulator.
  runtime::EventSimulator sim(topo, {});
  sim.make_devices(net.space());
  sim.install(plan);
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    sim.post_initialize(d, net.table(d), 0.0);
  }
  const double burst = sim.run();
  std::cout << "\nburst verification converged after " << burst * 1e3
            << " ms of virtual time, " << sim.stats().messages
            << " DVM messages\n";
  report("initial data plane", sim.violations());

  // 5. The §2.2.3 update: B reroutes 10.0.1.0/24 to W.
  fib::Rule fix;
  fix.priority = 30;
  fix.dst_prefix = packet::Ipv4Prefix::parse("10.0.1.0/24");
  fix.action = fib::Action::forward(topo.device("W"));
  sim.post_rule_update(topo.device("B"),
                       fib::FibUpdate::insert(topo.device("B"), fix), burst);
  const double done = sim.run();
  std::cout << "\nincremental verification took " << (done - burst) * 1e3
            << " ms of virtual time\n";
  report("after B reroutes 10.0.1.0/24 to W", sim.violations());
  return 0;
}
