// WAN scenario: a synthesized Internet2-shaped WAN where traffic to one
// site must traverse a scrubbing waypoint. Shows invariant specification
// over a generated topology, burst verification, violation localization,
// and incremental re-verification after a reroute.
//
// Run:  ./wan_waypoint
#include <iostream>
#include <limits>

#include "eval/datasets.hpp"
#include "eval/fib_synth.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"

using namespace tulkun;

int main() {
  const auto& spec_ds = eval::dataset("INet2");
  const auto topo = eval::build_topology(spec_ds);
  auto net = eval::synthesize(topo, eval::SynthOptions{2, 0, 42});
  std::cout << "WAN '" << spec_ds.name << "': " << topo.device_count()
            << " devices, " << topo.link_count() << " links, "
            << net.total_rules() << " rules\n";

  // Traffic from site 0 to site 4 must pass the scrubber at site 2.
  const DeviceId src = 0;
  const DeviceId scrubber = 2;
  const DeviceId dst = 4;
  auto& space = net.space();
  auto victim = space.none();
  for (const auto& p : topo.prefixes(dst)) victim |= space.dst_prefix(p);

  spec::Builtins b(topo, space);
  const auto inv = b.waypoint(victim, src, scrubber, dst);

  planner::Planner planner(topo, space);
  const auto plan = planner.plan(inv);
  std::cout << "DPVNet: " << plan.dag->node_count() << " nodes from "
            << plan.stats.paths << " valid paths (planned in "
            << plan.plan_seconds * 1e3 << " ms)\n";

  runtime::EventSimulator sim(topo, {});
  sim.make_devices(space);
  sim.install(plan);
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    sim.post_initialize(d, net.table(d), 0.0);
  }
  double now = sim.run();
  auto violations = sim.violations();
  std::cout << "burst verification: " << now * 1e3 << " ms, "
            << violations.size() << " violation(s)\n";
  for (const auto& v : violations) {
    std::cout << "  " << topo.name(v.device) << ": " << v.reason << "\n";
  }

  if (!violations.empty()) {
    // Fix: pin the victim prefix hop-by-hop along the shortest chain from
    // src to the scrubber; from the scrubber on, the existing shortest
    // routes carry it to dst.
    std::cout << "\npinning " << topo.name(src) << " -> "
              << topo.name(scrubber) << " for the victim prefix...\n";
    const auto hops_to_scrubber = topo.hop_distances_to(scrubber);
    DeviceId cur = src;
    while (cur != scrubber) {
      DeviceId next = kNoDevice;
      for (const auto& adj : topo.neighbors(cur)) {
        if (hops_to_scrubber[adj.neighbor] + 1 == hops_to_scrubber[cur]) {
          next = adj.neighbor;
          break;
        }
      }
      fib::Rule pin;
      pin.priority = 500;
      pin.dst_prefix = topo.prefixes(dst).front();
      pin.action = fib::Action::forward(next);
      sim.post_rule_update(cur, fib::FibUpdate::insert(cur, pin), now);
      now = sim.run();
      cur = next;
    }
    std::cout << "after pinning: " << sim.violations().size()
              << " violation(s)\n";
  }
  return 0;
}
