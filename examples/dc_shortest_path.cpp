// Data-center scenario: all-ToR-pair shortest-path reachability on a
// fat-tree (the paper's DC invariant, §9.3.1), plus the RCDC-style
// all-shortest-path availability contract verified with zero messages.
//
// Run:  ./dc_shortest_path [k]     (fat-tree arity, default 4)
#include <cstdlib>
#include <iostream>

#include "eval/fib_synth.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

using namespace tulkun;

int main(int argc, char** argv) {
  const auto k = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4u;
  const auto topo = topo::fat_tree(k);
  auto net = eval::synthesize(topo, eval::SynthOptions{k / 2, 0, 7});
  std::cout << "fat-tree(" << k << "): " << topo.device_count()
            << " switches, " << topo.link_count() << " links, "
            << net.total_rules() << " rules\n";

  auto& space = net.space();
  spec::Builtins b(topo, space);
  planner::Planner planner(topo, space);
  runtime::EventSimulator sim(topo, {});
  sim.make_devices(space);

  // Per-destination shortest-path reachability from every other ToR.
  std::vector<DeviceId> tors;
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    if (!topo.prefixes(d).empty()) tors.push_back(d);
  }
  double plan_ms = 0;
  std::size_t dag_nodes = 0;
  for (const DeviceId dst : tors) {
    auto pkt = space.none();
    for (const auto& p : topo.prefixes(dst)) pkt |= space.dst_prefix(p);
    std::vector<DeviceId> ingresses;
    for (const DeviceId t : tors) {
      if (t != dst) ingresses.push_back(t);
    }
    auto inv = b.multi_ingress_reachability(pkt, ingresses, dst);
    spec::LengthFilter f;
    f.cmp = spec::LengthFilter::Cmp::Eq;
    f.base = spec::LengthFilter::Base::Shortest;
    inv.behavior.path.filters.push_back(f);
    const auto plan = planner.plan(std::move(inv));
    plan_ms += plan.plan_seconds * 1e3;
    dag_nodes += plan.dag->node_count();
    sim.install(plan);
  }
  std::cout << tors.size() << " per-ToR invariants planned in " << plan_ms
            << " ms (" << dag_nodes << " DPVNet nodes total)\n";

  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    sim.post_initialize(d, net.table(d), 0.0);
  }
  const double burst = sim.run();
  std::cout << "burst verification: " << burst * 1e3 << " ms of virtual "
            << "time, " << sim.stats().messages << " messages, "
            << sim.violations().size() << " violation(s)\n";

  // RCDC special case: the equal-operator invariant verifies with local
  // contracts only — zero DVM messages (§4.2).
  {
    const DeviceId src = tors.front();
    const DeviceId dst = tors.back();
    auto pkt = space.none();
    for (const auto& p : topo.prefixes(dst)) pkt |= space.dst_prefix(p);
    const auto plan = planner.plan(b.all_shortest_path(pkt, src, dst));

    runtime::EventSimulator local(topo, {});
    local.make_devices(space);
    local.install(plan);
    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      local.post_initialize(d, net.table(d), 0.0);
    }
    local.run();
    std::cout << "\nRCDC-style all-shortest-path availability "
              << topo.name(src) << " -> " << topo.name(dst) << ": "
              << local.violations().size() << " violation(s), "
              << local.stats().messages
              << " messages (local contracts need none)\n";
  }
  return 0;
}
