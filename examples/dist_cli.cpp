// dist_cli: run the multi-process DistributedRuntime by hand, one role per
// invocation — the shape of a real deployment where every switch hosts its
// own verifier process and a controller-side coordinator drives phases.
//
// Single-command local run (forks its own device processes):
//   ./dist_cli --dataset=INet2 --updates=8 --transport=uds --procs=2
//
// Manual 3-process run on one machine (three terminals, any start order —
// senders redial with backoff until their peer listens; each line is one
// command):
//   ./dist_cli --role=device --rank=1 --transport=uds
//       --listen=/tmp/tk/p1.sock --peers=/tmp/tk/p0.sock,/tmp/tk/p2.sock
//   ./dist_cli --role=device --rank=2 --transport=uds
//       --listen=/tmp/tk/p2.sock --peers=/tmp/tk/p0.sock,/tmp/tk/p1.sock
//   ./dist_cli --role=coordinator --transport=uds
//       --listen=/tmp/tk/p0.sock --peers=/tmp/tk/p1.sock,/tmp/tk/p2.sock
//
// --peers lists the OTHER ranks' endpoints in rank order; --listen is this
// process's own endpoint. Every process must name the same dataset, seed
// and update count, because each rebuilds the world locally from them.
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "eval/dist_run.hpp"
#include "obs/export.hpp"
#include "obs/metrics_server.hpp"
#include "obs/trace.hpp"

using namespace tulkun;

namespace {

struct CliArgs {
  std::string role = "local";  // local | coordinator | device
  std::string dataset = "INet2";
  std::size_t updates = 8;
  std::uint64_t seed = 42;
  std::size_t max_destinations = 4;
  net::TransportKind kind = net::TransportKind::Unix;
  std::size_t procs = 2;  // local role only
  std::uint32_t kill_phase = runtime::DeviceProcess::kNoKillPhase;
  net::PeerId rank = 1;  // device role only
  std::string listen;
  std::string peers;
  /// Enables the flight recorder; local/coordinator roles write the merged
  /// Chrome trace here on completion (and on SIGINT). A device role uses the
  /// flag only to turn its recorder on — its records ship to the
  /// coordinator with the verdicts, no file is written.
  std::string trace_out;
  std::string metrics_listen;  // serve obs::Registry counters over HTTP
};

CliArgs parse(int argc, char** argv) {
  CliArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                       : nullptr;
    };
    if (const char* v = value("--role=")) {
      a.role = v;
    } else if (const char* v = value("--dataset=")) {
      a.dataset = v;
    } else if (const char* v = value("--updates=")) {
      a.updates = std::stoul(v);
    } else if (const char* v = value("--seed=")) {
      a.seed = std::stoull(v);
    } else if (const char* v = value("--max-dst=")) {
      a.max_destinations = std::stoul(v);
    } else if (const char* v = value("--transport=")) {
      a.kind = net::parse_transport_kind(v);
    } else if (const char* v = value("--procs=")) {
      a.procs = std::stoul(v);
    } else if (const char* v = value("--kill-phase=")) {
      a.kill_phase = static_cast<std::uint32_t>(std::stoul(v));
    } else if (const char* v = value("--rank=")) {
      a.rank = static_cast<net::PeerId>(std::stoul(v));
    } else if (const char* v = value("--listen=")) {
      a.listen = v;
    } else if (const char* v = value("--peers=")) {
      a.peers = v;
    } else if (const char* v = value("--trace-out=")) {
      a.trace_out = v;
    } else if (const char* v = value("--metrics-listen=")) {
      a.metrics_listen = v;
    } else if (arg == "--help") {
      std::cout
          << "roles:\n"
             "  --role=local (default): fork device processes and run\n"
             "      [--procs=N --kill-phase=K]\n"
             "  --role=coordinator --listen=EP --peers=EP1,..,EPN\n"
             "  --role=device --rank=R --listen=EP --peers=EP0,..\n"
             "common: --dataset=NAME --updates=N --seed=N --max-dst=N\n"
             "        --transport=inproc|uds|tcp\n"
             "        --trace-out=FILE (Chrome trace JSON; see README)\n"
             "        --metrics-listen=IP:PORT (Prometheus text endpoint)\n";
      std::exit(0);
    } else {
      throw Error("unknown flag " + arg + " (see --help)");
    }
  }
  return a;
}

/// Full rank-ordered endpoint table: --peers (the other ranks, in rank
/// order) with --listen spliced in at this process's own rank.
std::vector<net::Endpoint> endpoint_table(const CliArgs& a, net::PeerId self) {
  if (a.listen.empty() || a.peers.empty()) {
    throw Error("--role=" + a.role + " needs --listen and --peers");
  }
  std::vector<net::Endpoint> eps;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = a.peers.find(',', pos);
    const std::string addr = comma == std::string::npos
                                 ? a.peers.substr(pos)
                                 : a.peers.substr(pos, comma - pos);
    if (!addr.empty()) eps.push_back({a.kind, addr});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (self > eps.size()) throw Error("--rank exceeds the peer table");
  eps.insert(eps.begin() + self, {a.kind, a.listen});
  return eps;
}

// ---------------------------------------------------------------------------
// Clean Ctrl-C: SIGINT/SIGTERM are blocked in every thread (the mask is set
// before any thread exists) and claimed by one sigwait thread, which — if
// the run is still going — drains the local flight recorder to --trace-out,
// prints a final counter snapshot, and exits with the conventional 130.
// Forked device children unblock the inherited mask in
// maybe_run_device_role, so the process group still dies on Ctrl-C.
// ---------------------------------------------------------------------------

std::atomic<bool> g_run_done{false};
std::string g_trace_out;  // set once in main before the watcher starts

void flush_observability(const char* cause) {
  if (obs::trace_enabled() && !g_trace_out.empty()) {
    try {
      obs::write_chrome_trace_file(g_trace_out, {obs::drain_snapshot()});
      std::cerr << cause << ": flushed partial trace to " << g_trace_out
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << cause << ": trace flush failed: " << e.what() << "\n";
    }
  }
  std::cerr << "-- final metrics snapshot --\n"
            << obs::render_prometheus_text();
}

void start_signal_watcher() {
  // Shells start background jobs with SIGINT set to SIG_IGN, and an
  // ignored signal is discarded even while blocked — sigwait would never
  // see it. Restore the default disposition first.
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigaction(SIGINT, &dfl, nullptr);
  sigaction(SIGTERM, &dfl, nullptr);
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  std::thread([set] {
    int sig = 0;
    if (sigwait(&set, &sig) != 0) return;
    if (g_run_done.load()) return;  // normal exit already reporting
    flush_observability(sig == SIGINT ? "SIGINT" : "SIGTERM");
    _exit(130);
  }).detach();
}

void report(const eval::DistRunResult& res) {
  std::cout << "burst: " << format_duration(res.burst_wall_seconds)
            << ", violations: " << res.violations
            << ", resets survived: " << res.resets << "\n";
  if (!res.incremental_wall_seconds.empty()) {
    std::cout << "incremental: p50 "
              << format_duration(res.incremental_wall_seconds.quantile(0.5))
              << ", p99 "
              << format_duration(res.incremental_wall_seconds.quantile(0.99))
              << " over " << res.incremental_wall_seconds.size()
              << " updates\n";
  }
  runtime::print_metrics(std::cout, res.metrics);
  std::cout << "state digest rows: " << res.rows.size() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Re-exec entry for the local role's forked device processes.
    if (eval::maybe_run_device_role(argc, argv)) return 0;
    const auto args = parse(argc, argv);
    const auto& spec = eval::dataset(args.dataset);
    eval::HarnessOptions opts;
    opts.seed = args.seed;
    opts.max_destinations = args.max_destinations;

    g_trace_out = args.trace_out;
    if (!args.trace_out.empty()) obs::set_trace_enabled(true);
    start_signal_watcher();
    std::unique_ptr<obs::MetricsServer> metrics;
    if (!args.metrics_listen.empty()) {
      metrics = std::make_unique<obs::MetricsServer>();
      metrics->start(args.metrics_listen);
      std::cout << "metrics: http://" << metrics->address() << "/metrics\n";
    }
    std::vector<obs::TraceSnapshot> traces;

    if (args.role == "local") {
      eval::DistOptions dist;
      dist.kind = args.kind;
      dist.device_procs = args.procs;
      dist.n_updates = args.updates;
      dist.kill_rank1_at_phase = args.kill_phase;
      dist.collect_trace = !args.trace_out.empty();
      auto res = eval::dist_run(spec, opts, dist);
      traces = std::move(res.traces);
      report(res);
    } else if (args.role == "coordinator") {
      const auto eps = endpoint_table(args, runtime::kCoordinatorRank);
      auto res = eval::dist_run_coordinator(spec, opts, args.updates, eps);
      traces = std::move(res.traces);
      report(res);
    } else if (args.role == "device") {
      const auto eps = endpoint_table(args, args.rank);
      eval::dist_run_device(spec, opts, args.updates, eps, args.rank,
                            /*incarnation=*/0,
                            runtime::DeviceProcess::kNoKillPhase);
      std::cout << "device rank " << args.rank << " done\n";
    } else {
      throw Error("unknown --role=" + args.role);
    }

    g_run_done.store(true);
    if (metrics) metrics->stop();
    if (!args.trace_out.empty() && args.role != "device") {
      traces.push_back(obs::drain_snapshot());
      obs::write_chrome_trace_file(args.trace_out, traces);
      std::cout << "wrote trace " << args.trace_out << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
