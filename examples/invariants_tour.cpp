// Tour of the invariant catalogue (Table 1): builds each invariant family
// on the Figure 2 network and verifies it against correct and erroneous
// data planes, mirroring the §9.1 functionality demos.
//
// Run:  ./invariants_tour
#include <iostream>

#include "eval/fib_synth.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

using namespace tulkun;

namespace {

class Demo {
 public:
  Demo()
      : topo_(topo::figure2_network()),
        net_(topo_),
        b_(topo_, net_.space()),
        planner_(topo_, net_.space()) {
    // A clean data plane: route every attached prefix along a shortest
    // path, deliver at the owner.
    for (const auto& [dst, prefix] : topo_.all_prefix_attachments()) {
      route(prefix, dst);
    }
  }

  topo::Topology& topo() { return topo_; }
  fib::NetworkFib& net() { return net_; }
  spec::Builtins& builtins() { return b_; }

  void route(const packet::Ipv4Prefix& prefix, DeviceId dst) {
    const auto dist = topo_.hop_distances_to(dst);
    for (DeviceId dev = 0; dev < topo_.device_count(); ++dev) {
      if (dist[dev] == topo::Topology::kUnreachable) continue;
      fib::Rule r;
      r.priority = next_priority_++;
      r.dst_prefix = prefix;
      if (dev == dst) {
        r.action = fib::Action::deliver();
      } else {
        std::vector<DeviceId> hops;
        for (const auto& adj : topo_.neighbors(dev)) {
          if (dist[adj.neighbor] + 1 == dist[dev]) hops.push_back(adj.neighbor);
        }
        r.action = hops.size() == 1 ? fib::Action::forward(hops.front())
                                    : fib::Action::forward_any(hops);
      }
      net_.table(dev).insert(r);
    }
  }

  bool check(const spec::Invariant& inv) {
    const auto plan = planner_.plan(inv);
    runtime::EventSimulator sim(topo_, {});
    sim.make_devices(net_.space());
    sim.install(plan);
    for (DeviceId d = 0; d < topo_.device_count(); ++d) {
      sim.post_initialize(d, net_.table(d), 0.0);
    }
    sim.run();
    return sim.violations().empty();
  }

  void show(const std::string& name, const spec::Invariant& inv,
            bool expect_clean) {
    const bool clean = check(inv);
    std::cout << (clean ? "  SATISFIED " : "  VIOLATED  ") << name
              << (clean == expect_clean ? "" : "   << UNEXPECTED") << "\n";
  }

 private:
  topo::Topology topo_;
  fib::NetworkFib net_;
  spec::Builtins b_;
  planner::Planner planner_;
  std::int32_t next_priority_ = 10;
};

}  // namespace

int main() {
  Demo demo;
  auto& topo = demo.topo();
  auto& b = demo.builtins();
  auto& space = demo.net().space();
  const auto S = topo.device("S");
  const auto B = topo.device("B");
  const auto W = topo.device("W");
  const auto D = topo.device("D");
  const auto C = topo.device("C");
  const auto to_d = space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/23"));
  const auto to_c = space.dst_prefix(packet::Ipv4Prefix::parse("10.0.2.0/24"));

  std::cout << "Table 1 invariant families on the Figure 2 network "
               "(clean shortest-path data plane):\n";
  demo.show("reachability           S -> D", b.reachability(to_d, S, D), true);
  demo.show("isolation              S -/-> C (expected to fail: C is "
            "reachable)",
            b.isolation(to_c, S, C), false);
  demo.show("waypoint               S -W-> D (fails: shortest path skips W "
            "in one universe)",
            b.waypoint(to_d, S, W, D), false);
  demo.show("bounded length <=3     S -> D",
            b.bounded_reachability(to_d, S, D, 3), true);
  demo.show("shortest+1             S -> D",
            b.shortest_plus_reachability(to_d, S, D, 1), true);
  demo.show("multi-ingress          {S,B} -> D",
            b.multi_ingress_reachability(to_d, {S, B}, D), true);
  demo.show("non-redundant          S -> D (exactly one copy)",
            b.non_redundant_reachability(to_d, S, D), true);
  demo.show("all-shortest-path      S -> C (RCDC-style local contracts)",
            b.all_shortest_path(to_c, S, C), true);

  // Multicast / anycast need replicated destinations.
  const auto svc = packet::Ipv4Prefix::parse("10.0.6.0/24");
  topo.attach_prefix(D, svc);
  topo.attach_prefix(C, svc);
  const auto svc_space = space.dst_prefix(svc);
  std::cout << "\nservice prefix 10.0.6.0/24 replicated at D and C:\n";

  // Multicast plane: replicate at B.
  demo.route(svc, D);  // unicast baseline first: only D receives
  demo.show("anycast                S -> {D xor C}",
            b.anycast(svc_space, S, {D, C}), true);
  demo.show("multicast              S -> {D and C} (fails: only D receives)",
            b.multicast(svc_space, S, {D, C}), false);

  std::cout << "\n(the two trailing rows flip if you replicate at B: see "
               "tests/integration/demo_test.cpp)\n";
  return 0;
}
