// verify_cli: file-driven verification — the shape of a real deployment's
// offline entry point.
//
//   ./verify_cli <topology.txt> <fib.txt> <invariants.txt>
//
// File formats: topology (src/topo/parser.hpp), FIB (src/fib/fib_parser.hpp),
// invariants (src/spec/parser.hpp). With no arguments, runs a built-in
// demo triple and prints the three files it used.
#include <fstream>
#include <iostream>
#include <sstream>

#include "fib/fib_parser.hpp"
#include "runtime/event_sim.hpp"
#include "spec/parser.hpp"
#include "topo/parser.hpp"

using namespace tulkun;

namespace {

constexpr const char* kDemoTopology =
    "device S\ndevice A\ndevice B\ndevice W\ndevice D\n"
    "link S A 1ms\nlink A B 1ms\nlink A W 1ms\nlink B W 1ms\n"
    "link B D 1ms\nlink W D 1ms\n"
    "prefix D 10.0.0.0/23\n";

constexpr const char* kDemoFib =
    "rule S 10.0.0.0/23 prio 10 fwd A\n"
    "rule A 10.0.0.0/24 prio 10 fwd-all B W\n"
    "rule A 10.0.1.0/24 prio 20 port 80 fwd-any B W\n"
    "rule A 10.0.1.0/24 prio 10 fwd W\n"
    "rule B 10.0.1.0/24 prio 10 fwd D\n"
    "rule W 10.0.0.0/23 prio 10 fwd D\n"
    "rule D 10.0.0.0/23 prio 10 deliver\n";

constexpr const char* kDemoInvariants =
    "invariant waypoint_via_W:\n"
    "  packets: dstIP=10.0.0.0/23\n"
    "  ingress: S\n"
    "  behavior: exist >= 1 : { S .* W .* D ; loop_free }\n";

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    throw Error(std::string("cannot open ") + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string topo_text = kDemoTopology;
    std::string fib_text = kDemoFib;
    std::string inv_text = kDemoInvariants;
    if (argc == 4) {
      topo_text = slurp(argv[1]);
      fib_text = slurp(argv[2]);
      inv_text = slurp(argv[3]);
    } else if (argc != 1) {
      std::cerr << "usage: " << argv[0]
                << " [<topology.txt> <fib.txt> <invariants.txt>]\n";
      return 2;
    } else {
      std::cout << "(no files given: verifying the built-in Figure 2 demo)\n";
    }

    const auto topo = topo::parse_topology(topo_text);
    fib::NetworkFib net(topo);
    fib::parse_fib(fib_text, net);
    spec::SpecParser parser(topo, net.space());
    auto invariants = parser.parse(inv_text);

    planner::Planner planner(topo, net.space());
    runtime::EventSimulator sim(topo, {});
    sim.make_devices(net.space());
    std::cout << "planning " << invariants.size() << " invariant(s) over "
              << topo.device_count() << " devices / " << net.total_rules()
              << " rules...\n";
    for (auto& inv : invariants) {
      const auto plan = planner.plan(std::move(inv));
      std::cout << "  " << plan.inv.name << ": DPVNet "
                << plan.dag->node_count() << " nodes, "
                << plan.scenes.size() << " scene(s)\n";
      for (const auto& w : plan.static_warnings) {
        std::cout << "    warning: " << w << "\n";
      }
      sim.install(plan);
    }

    for (DeviceId d = 0; d < topo.device_count(); ++d) {
      sim.post_initialize(d, net.table(d), 0.0);
    }
    const double t = sim.run();
    const auto violations = sim.violations();
    std::cout << "verified in " << t * 1e3 << " ms of virtual time ("
              << sim.stats().messages << " messages)\n";
    if (violations.empty()) {
      std::cout << "RESULT: all invariants satisfied\n";
      return 0;
    }
    std::cout << "RESULT: " << violations.size() << " violation(s)\n";
    for (const auto& v : violations) {
      std::cout << "  invariant #" << v.invariant << " at "
                << topo.name(v.device) << ": " << v.reason << "\n";
    }
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
