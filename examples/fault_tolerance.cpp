// Fault tolerance (§6): precompute a fault-tolerant DPVNet for
// (<= shortest+1) reachability under any single link failure, fail links
// at runtime, and watch the verifiers flood link-state and recount without
// ever contacting the planner.
//
// Run:  ./fault_tolerance
#include <iostream>

#include "eval/fib_synth.hpp"
#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

using namespace tulkun;

int main() {
  const auto topo = topo::figure2_network();
  auto net = eval::synthesize(topo, eval::SynthOptions{1, 0, 5});
  auto& space = net.space();
  const auto S = topo.device("S");
  const auto A = topo.device("A");
  const auto B = topo.device("B");
  const auto W = topo.device("W");
  const auto D = topo.device("D");

  spec::Builtins b(topo, space);
  auto to_d = space.none();
  for (const auto& p : topo.prefixes(D)) to_d |= space.dst_prefix(p);
  auto inv = b.shortest_plus_reachability(to_d, S, D, 1);
  inv.faults.any_k = 1;  // tolerate any single link failure

  planner::Planner planner(topo, space);
  const auto plan = planner.plan(std::move(inv));
  std::cout << "fault-tolerant DPVNet: " << plan.dag->node_count()
            << " nodes across " << plan.scenes.size() << " scenes ("
            << plan.stats.scenes_enumerated << " enumerated, "
            << plan.stats.scenes_reused << " served by scene reuse)\n";
  for (const auto& w : plan.static_warnings) {
    std::cout << "  warning: " << w << "\n";
  }

  runtime::EventSimulator sim(topo, {});
  sim.make_devices(space);
  sim.install(plan);
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    sim.post_initialize(d, net.table(d), 0.0);
  }
  double now = sim.run();
  std::cout << "\nburst: " << sim.violations().size() << " violation(s)\n";

  const auto scene = [&](LinkId link, const char* label) {
    sim.post_link_event(link, /*up=*/false, now);
    const double done = sim.run();
    std::cout << "fail " << label << ": recount converged in "
              << (done - now) * 1e3 << " ms, "
              << sim.violations().size() << " violation(s)\n";
    now = done;
    sim.post_link_event(link, /*up=*/true, now);
    now = sim.run();
  };

  // The data plane routes S->A->{B or W}->D. Failing W-D breaks the
  // W-universe until the control plane reacts; failing B-C is harmless.
  scene(LinkId{W, D}, "W-D");
  scene(LinkId{A, B}, "A-B");
  scene(LinkId{B, topo.device("C")}, "B-C (off-path)");

  // The §6 protocol only involves the planner for unspecified scenes:
  std::uint64_t reports = 0;
  for (DeviceId d = 0; d < topo.device_count(); ++d) {
    reports += sim.device(d).stats().unknown_scene_reports;
  }
  std::cout << "\nplanner contacted for unspecified scenes: " << reports
            << " time(s) (single failures were all precomputed)\n";
  return 0;
}
