// Figure 10: dataset statistics (name, kind, devices, links, rules).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);
  eval::print_dataset_table(std::cout,
                            args.full ? eval::all_datasets()
                                      : args.datasets(),
                            args.harness_options());
  std::cout << "\n(rule counts are scaled-down synthetics; see DESIGN.md "
               "for per-dataset notes)\n";
  return 0;
}
