// Predicate-tier microbenchmark (BENCH_PREDICATE.json).
//
// Measures the two halves of the atom/arena rework in isolation:
//  1. overlap / diff / count set operations, atom tier vs BDD tier, on the
//     two workload shapes the engine actually sees — prefix predicates and
//     /0-hull Drop-class unions of scattered prefixes;
//  2. bytes-on-wire of the sharded transfer path for a churned predicate
//     stream: re-serialized blobs (the SerializeCache form) vs node-ID
//     deltas (NodeChannelEncoder) vs the interval form dst-only
//     predicates ship as.
//
// Compare with --atoms=0 to see the BDD-only state; the checked-in JSON
// records both tiers from one run (the tier is toggled per section).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bdd/serialize.hpp"
#include "common.hpp"
#include "core/rng.hpp"
#include "packet/packet_set.hpp"

namespace {

using namespace tulkun;

packet::Ipv4Prefix random_prefix(Rng& rng) {
  const auto len = static_cast<std::uint8_t>(rng.uniform(12, 28));
  const auto addr = static_cast<std::uint32_t>(rng.uniform(0, ~0u));
  return packet::Ipv4Prefix(addr, len);
}

/// The benchmark fixture: `prefixes` model per-rule predicates, `classes`
/// model Drop-class / LEC-class predicates (unions of scattered prefixes
/// whose hull is /0 — nothing for the hull index to prune).
struct Sets {
  std::vector<packet::PacketSet> prefixes;
  std::vector<packet::PacketSet> classes;
};

Sets build_sets(packet::PacketSpace& space, std::uint64_t seed) {
  Rng rng(seed);
  Sets s;
  for (int i = 0; i < 64; ++i) {
    s.prefixes.push_back(space.dst_prefix(random_prefix(rng)));
  }
  for (int i = 0; i < 32; ++i) {
    auto acc = space.none();
    for (int j = 0; j < 16; ++j) {
      acc |= space.dst_prefix(random_prefix(rng));
    }
    s.classes.push_back(std::move(acc));
  }
  return s;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs `op` `iters` times and returns nanoseconds per call.
template <typename F>
double ns_per_op(std::size_t iters, F&& op) {
  // Warm caches (memo tables, op caches) so steady state is measured.
  for (std::size_t i = 0; i < iters / 10 + 1; ++i) op(i);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) op(i);
  return seconds_since(t0) / static_cast<double>(iters) * 1e9;
}

/// One tier's numbers: the atom flag must already be set; sets are built
/// inside so their representation matches the tier under test.
void run_ops_section(const std::string& tier, std::uint64_t seed,
                     bench::JsonReport& json) {
  packet::PacketSpace space;
  Sets s = build_sets(space, seed);
  const std::string p = "ops." + tier + ".";
  volatile double sink = 0;  // defeat dead-code elimination of count()
  volatile bool bsink = false;

  json.add(p + "prefix_overlap_ns", ns_per_op(20000, [&](std::size_t i) {
             bsink = s.prefixes[i % 64].intersects(s.prefixes[(i + 17) % 64]);
           }));
  json.add(p + "class_overlap_ns", ns_per_op(4000, [&](std::size_t i) {
             bsink = s.classes[i % 32].intersects(s.classes[(i + 7) % 32]);
           }));
  json.add(p + "class_intersect_ns", ns_per_op(4000, [&](std::size_t i) {
             auto r = s.classes[i % 32] & s.classes[(i + 7) % 32];
             bsink = r.empty();
           }));
  json.add(p + "class_diff_ns", ns_per_op(4000, [&](std::size_t i) {
             auto r = s.classes[i % 32] - s.prefixes[i % 64];
             bsink = r.empty();
           }));
  json.add(p + "class_count_ns", ns_per_op(4000, [&](std::size_t i) {
             sink = s.classes[i % 32].count();
           }));
  json.add(p + "union_chain_ns", ns_per_op(400, [&](std::size_t i) {
             auto acc = space.none();
             for (int j = 0; j < 16; ++j) {
               acc |= s.prefixes[(i + static_cast<std::size_t>(j) * 5) % 64];
             }
             bsink = acc.empty();
           }));
  (void)sink;
  (void)bsink;
}

/// Bytes-on-wire of one churned predicate stream, all three forms. Models
/// the sharded transfer path: 8 "flows" each grow by one scattered prefix
/// per round and are flooded to every peer each round (predicates re-sent
/// mostly unchanged — the case the delta stream compresses).
void run_wire_section(std::uint64_t seed, bench::JsonReport& json) {
  constexpr int kFlows = 8;
  constexpr int kRounds = 24;
  constexpr int kPeers = 3;

  packet::PacketSpace sender;
  Rng rng(seed);
  bdd::SerializeCache cache;
  std::vector<bdd::NodeChannelEncoder> channels(
      kPeers, bdd::NodeChannelEncoder(sender.manager()));

  std::vector<packet::PacketSet> flows(kFlows, sender.none());
  std::uint64_t blob_bytes = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t atom_bytes = 0;
  std::uint64_t sends = 0;

  for (int round = 0; round < kRounds; ++round) {
    for (auto& flow : flows) {
      flow |= sender.dst_prefix(random_prefix(rng));
      for (int peer = 0; peer < kPeers; ++peer) {
        // Blob form: memoized serialize, but every send ships the bytes.
        blob_bytes += cache.get(sender.manager(), flow.ref())->size();
        // Delta form: per-(src, dst) node stream.
        std::vector<std::uint8_t> wire;
        channels[static_cast<std::size_t>(peer)].encode(flow.ref(), wire);
        delta_bytes += wire.size();
        // Interval form (dst-only predicates only): tag + n + 8n bytes.
        atom_bytes +=
            1 + 4 + 8 * sender.atoms().intervals(flow.atom_ref()).size();
        ++sends;
      }
    }
  }

  json.add("wire.sends", sends);
  json.add("wire.blob_bytes", blob_bytes);
  json.add("wire.delta_bytes", delta_bytes);
  json.add("wire.atom_bytes", atom_bytes);
  json.add("wire.blob_over_delta",
           static_cast<double>(blob_bytes) / static_cast<double>(delta_bytes));
  json.add("wire.blob_over_atom",
           static_cast<double>(blob_bytes) / static_cast<double>(atom_bytes));
  json.add("wire.serialize_cache_hit_rate",
           static_cast<double>(cache.hits()) /
               static_cast<double>(cache.hits() + cache.misses()));

  std::cout << "\n== Wire bytes, churned stream (" << sends << " sends) ==\n"
            << "  blob:  " << blob_bytes << " B\n"
            << "  delta: " << delta_bytes << " B ("
            << static_cast<double>(blob_bytes) /
                   static_cast<double>(delta_bytes)
            << "x smaller)\n"
            << "  atoms: " << atom_bytes << " B ("
            << static_cast<double>(blob_bytes) /
                   static_cast<double>(atom_bytes)
            << "x smaller)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::JsonReport json;
  bench::ObsSession obs(args);
  pred::atom_counters_reset();

  const bool atoms_flag = pred::atom_path_enabled();

  pred::set_atom_path_enabled(true);
  run_ops_section("atoms", args.seed, json);
  pred::set_atom_path_enabled(false);
  run_ops_section("bdd", args.seed, json);
  pred::set_atom_path_enabled(atoms_flag);

  std::cout << "== Set ops (ns/op, atoms vs BDD; see --json for keys) ==\n";

  pred::set_atom_path_enabled(true);
  run_wire_section(args.seed + 1, json);
  pred::set_atom_path_enabled(atoms_flag);

  bench::add_pred_counters(json, "predicate.");
  json.write(args.json_path);
  return 0;
}
