// Figure 12a/b/c (§9.3.4): fault scenes on WAN/LAN datasets — whole-network
// verification per scene, and incremental updates under scenes.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);

  std::vector<eval::Harness::FaultResult> results;
  for (const auto& spec : args.wan_datasets()) {
    eval::Harness h(spec, args.harness_options());
    std::cout << "running " << spec.name << " with " << args.fault_scenes
              << " fault scenes..." << std::endl;
    results.push_back(h.run_faults(args.fault_scenes,
                                   std::max<std::size_t>(args.updates / 10, 3),
                                   /*with_baselines=*/true));
  }
  eval::print_fault_tables(std::cout, results, 0.010, 0.80);

  std::cout << "\nfault-tolerant planning time:\n";
  for (const auto& r : results) {
    std::cout << "  " << r.dataset << ": "
              << format_duration(r.tulkun_plan_seconds) << " for "
              << r.scenes << " sampled scenes\n";
  }
  return 0;
}
