// Figure 15 (§9.4): DVM UPDATE message processing overhead — per-device
// total time, memory, CPU load, and per-message processing time CDFs,
// replaying the evaluation's message trace under each switch profile.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);

  std::cout << "\n== Figure 15: DVM UPDATE processing overhead CDFs ==\n";
  for (const auto& spec : args.wan_datasets()) {
    eval::Harness h(spec, args.harness_options());
    std::cout << "\n-- dataset " << spec.name << " --\n";
    for (const auto& profile : eval::switch_profiles()) {
      const auto oh = h.measure_overhead(profile, args.updates);
      eval::print_cdf(std::cout, profile.name + " msg total time ",
                      oh.msg_seconds, /*as_duration=*/true);
      eval::print_cdf(std::cout, profile.name + " msg memory     ",
                      oh.msg_memory, /*as_duration=*/false);
      eval::print_cdf(std::cout, profile.name + " per-message    ",
                      oh.per_message_seconds, /*as_duration=*/true);
      std::cout << profile.name << " msg CPU load   : max="
                << oh.msg_cpu.max() << "\n";
    }
  }
  return 0;
}
