// Figure 15 (§9.4): DVM UPDATE message processing overhead — per-device
// total time, memory, CPU load, and per-message processing time CDFs,
// replaying the evaluation's message trace under each switch profile.
// The trace is measured once at host speed; each profile is a pure CPU
// slowdown factor applied to that one measurement (measure_overhead_all).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  // Device-process re-exec entry for the --transport=uds|tcp section.
  if (eval::maybe_run_device_role(argc, argv)) return 0;
  const auto args = bench::Args::parse(argc, argv);
  bench::JsonReport json;
  bench::ObsSession obs(args);

  std::cout << "\n== Figure 15: DVM UPDATE processing overhead CDFs ==\n";
  for (const auto& spec : args.wan_datasets()) {
    eval::Harness h(spec, args.harness_options());
    std::cout << "\n-- dataset " << spec.name << " --\n";
    for (const auto& [profile, oh] : h.measure_overhead_all(args.updates)) {
      eval::print_cdf(std::cout, profile.name + " msg total time ",
                      oh.msg_seconds, /*as_duration=*/true);
      eval::print_cdf(std::cout, profile.name + " msg memory     ",
                      oh.msg_memory, /*as_duration=*/false);
      eval::print_cdf(std::cout, profile.name + " per-message    ",
                      oh.per_message_seconds, /*as_duration=*/true);
      std::cout << profile.name << " msg CPU load   : max="
                << oh.msg_cpu.max() << "\n";
      const std::string p = spec.name + "." + profile.name + ".";
      if (!oh.per_message_seconds.empty()) {
        json.add(p + "per_message_p50", oh.per_message_seconds.quantile(0.5));
        json.add(p + "per_message_p99",
                 oh.per_message_seconds.quantile(0.99));
      }
      if (!oh.msg_seconds.empty()) {
        json.add(p + "msg_seconds_p50", oh.msg_seconds.quantile(0.5));
      }
    }
  }

  // Message handling on the wall-clock worker-pool runtime: the same DVM
  // traffic, batched into frames and decoded through the transfer cache.
  bench::run_sharded_section(eval::dataset("INet2"), args, args.updates,
                             json);

  // The same replay across real OS processes when --transport is given:
  // what the wire costs on top of the shared-memory worker pool.
  if (!args.transport.empty()) {
    bench::run_transport_section(eval::dataset("INet2"), args, args.updates,
                                 json, &obs);
  }

  json.write(args.json_path);
  return 0;
}
