// Ablation ◆: divide-and-conquer partitioned verification (§7) — all-pair
// reachability verified by k one-big-switch partition instances, sweeping
// k. Shows the intra/inter work split: more partitions mean smaller
// per-instance state but more cross-border QUERY/ANSWER traffic.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/stats.hpp"
#include "eval/datasets.hpp"
#include "eval/fib_synth.hpp"
#include "partition/partition.hpp"

using namespace tulkun;

int main() {
  std::cout << "\n== Ablation: divide-and-conquer partition verification "
               "(§7) ==\n";
  for (const char* name : {"NTT", "OTEG", "NGDC"}) {
    const auto& spec = eval::dataset(name);
    const auto topo = eval::build_topology(spec);
    auto net = eval::synthesize(
        topo, eval::SynthOptions{2, spec.extra_rules, spec.seed});
    std::cout << "\n-- " << name << ": " << topo.device_count()
              << " devices --\n";
    std::cout << "clusters  verify-time  intra-resolves  cross-msgs  "
                 "failures\n";
    for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
      if (k > topo.device_count()) break;
      partition::PartitionedVerifier v(
          net, partition::make_clusters(topo, k, spec.seed));
      const auto t0 = std::chrono::steady_clock::now();
      const auto failures = v.verify_all_pairs();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      std::printf("%-9u %-12s %-15llu %-11llu %zu\n", k,
                  format_duration(secs).c_str(),
                  static_cast<unsigned long long>(v.stats().intra_queries),
                  static_cast<unsigned long long>(v.stats().cross_messages),
                  failures.size());
    }
  }
  std::cout << "\n(per-instance memo state shrinks with k while the "
               "cross-border message count grows — the §7 deployment "
               "trade-off)\n";
  return 0;
}
