// Ablation ◆: BDD predicates vs interval sets (DESIGN.md decision 1).
//
// Tulkun encodes packet sets as BDDs (like the paper); Delta-net-style
// interval sets are the alternative. This microbenchmark compares the
// operations DVM performs per message: intersect, union, subtract,
// equality, and wire encoding.
#include <benchmark/benchmark.h>

#include "bdd/serialize.hpp"
#include "core/interval_set.hpp"
#include "core/rng.hpp"
#include "packet/packet_set.hpp"

namespace {

using namespace tulkun;

packet::Ipv4Prefix random_prefix(Rng& rng) {
  const auto len = static_cast<std::uint8_t>(rng.uniform(8, 28));
  const auto addr = static_cast<std::uint32_t>(rng.uniform(0, ~0u));
  return packet::Ipv4Prefix(addr, len);
}

void BM_BddIntersect(benchmark::State& state) {
  packet::PacketSpace space;
  Rng rng(1);
  std::vector<packet::PacketSet> sets;
  for (int i = 0; i < 64; ++i) {
    sets.push_back(space.dst_prefix(random_prefix(rng)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i % 64] & sets[(i + 17) % 64]);
    ++i;
  }
}
BENCHMARK(BM_BddIntersect);

void BM_IntervalIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<IntervalSet> sets;
  for (int i = 0; i < 64; ++i) {
    const auto p = random_prefix(rng);
    sets.push_back(IntervalSet(Interval{p.range_lo(), p.range_hi()}));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i % 64].intersect(sets[(i + 17) % 64]));
    ++i;
  }
}
BENCHMARK(BM_IntervalIntersect);

void BM_BddUnionChain(benchmark::State& state) {
  packet::PacketSpace space;
  Rng rng(2);
  std::vector<packet::PacketSet> sets;
  for (int i = 0; i < 64; ++i) {
    sets.push_back(space.dst_prefix(random_prefix(rng)));
  }
  for (auto _ : state) {
    auto acc = space.none();
    for (const auto& s : sets) acc |= s;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_BddUnionChain);

void BM_IntervalUnionChain(benchmark::State& state) {
  Rng rng(2);
  std::vector<IntervalSet> sets;
  for (int i = 0; i < 64; ++i) {
    const auto p = random_prefix(rng);
    sets.push_back(IntervalSet(Interval{p.range_lo(), p.range_hi()}));
  }
  for (auto _ : state) {
    IntervalSet acc;
    for (const auto& s : sets) acc = acc.unite(s);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_IntervalUnionChain);

void BM_BddEquality(benchmark::State& state) {
  // O(1) with hash-consing — the reason Tulkun stores predicates as BDDs.
  packet::PacketSpace space;
  Rng rng(3);
  const auto a = space.dst_prefix(random_prefix(rng)) & space.dst_port(80);
  const auto b = space.dst_port(80) & a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
  }
}
BENCHMARK(BM_BddEquality);

void BM_BddSerialize(benchmark::State& state) {
  packet::PacketSpace space;
  Rng rng(4);
  auto acc = space.none();
  for (int i = 0; i < 16; ++i) acc |= space.dst_prefix(random_prefix(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd::serialize(space.manager(), acc.ref()));
  }
}
BENCHMARK(BM_BddSerialize);

void BM_BddDeserialize(benchmark::State& state) {
  packet::PacketSpace space;
  Rng rng(4);
  auto acc = space.none();
  for (int i = 0; i < 16; ++i) acc |= space.dst_prefix(random_prefix(rng));
  const auto bytes = bdd::serialize(space.manager(), acc.ref());
  packet::PacketSpace target;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd::deserialize(target.manager(), bytes));
  }
}
BENCHMARK(BM_BddDeserialize);

// Port-range predicates: expressible with BDDs, outside the interval
// model's single dimension (the paper's argument against atom-only tools).
void BM_BddPortRangeRefine(benchmark::State& state) {
  packet::PacketSpace space;
  Rng rng(5);
  const auto base = space.dst_prefix(packet::Ipv4Prefix::parse("10.0.0.0/8"));
  for (auto _ : state) {
    const auto lo = static_cast<std::uint32_t>(rng.uniform(0, 60000));
    benchmark::DoNotOptimize(
        base & space.field_range(packet::Field::DstPort, lo, lo + 100));
  }
}
BENCHMARK(BM_BddPortRangeRefine);

}  // namespace

BENCHMARK_MAIN();
