// Figure 11a (and the §9.2 testbed Experiment 1 for INet2): burst-update
// verification time of Tulkun vs the centralized baselines, with
// acceleration ratios.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);
  bench::JsonReport json;
  bench::ObsSession obs(args);

  std::vector<eval::Harness::Result> results;
  for (const auto& spec : args.datasets()) {
    eval::Harness h(spec, args.harness_options());
    std::cout << "running " << spec.name << " (" << h.topology().device_count()
              << " devices, " << h.total_rules() << " rules, "
              << h.destinations().size() << " destinations)..." << std::endl;
    results.push_back(h.run(/*with_baselines=*/true, /*n_updates=*/0));
  }
  eval::print_burst_table(std::cout, results);

  std::cout << "\nplanner time (not on the verification path):\n";
  for (const auto& r : results) {
    std::cout << "  " << r.dataset << ": "
              << format_duration(r.tulkun_plan_seconds) << "\n";
    json.add(r.dataset + ".plan_seconds", r.tulkun_plan_seconds);
    for (const auto& row : r.rows) {
      json.add(r.dataset + "." + row.tool + ".burst_seconds",
               row.burst_seconds);
    }
  }

  // The same burst on the wall-clock worker-pool runtime (every predicate
  // crosses devices through the batched wire codec).
  bench::run_sharded_section(eval::dataset("INet2"), args, /*n_updates=*/0,
                             json);

  json.write(args.json_path);
  return 0;
}
