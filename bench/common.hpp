// Shared plumbing for the figure-reproduction bench binaries.
//
// Every binary accepts:
//   --full           run all 13 datasets at full update counts (slow)
//   --updates=N      incremental updates per dataset
//   --max-dst=N      destination sample per dataset (0 = all)
//   --seed=N
//   --shards=N       worker-pool size of the sharded runtime sections
//                    (0 = one worker per hardware thread; the TULKUN_SHARDS
//                    environment variable sets the same knob, flags win)
//   --plan-workers=N planning concurrency of the PlanService sections
//                    (1 = serial, 0 = one per hardware thread; the
//                    TULKUN_PLAN_WORKERS environment variable sets the same
//                    knob, flags win; plans are byte-identical regardless)
//   --plan-incremental=0|1  disable/enable incremental replanning on the
//                    PlanService sections (default on; off = every commit
//                    replans the full intent set)
//   --atoms=0|1      disable/enable the atom-decomposition fast path
//                    (default on; TULKUN_ATOMS=0 sets the same kill switch,
//                    flags win)
//   --gc-nodes=N     per-device BDD gc threshold for the sharded runtime
//                    (live nodes before a mark/sweep; 0 = gc off)
//   --fib-index=0|1  disable/enable the destination-hull table index
//                    (default on; off = the pre-index full-scan engine,
//                    the baseline row of BENCH_HOTPATH.json)
//   --drop=F         fraction of incremental inserts that are Drop-class
//                    (/0-hull profile; see eval::random_updates)
//   --transport=K    inproc|uds|tcp: also run the multi-process
//                    DistributedRuntime section over that transport
//                    (binaries that support it; empty = skip)
//   --procs=N        device processes for the --transport section
//   --json <path>    also write a flat machine-readable summary (--json=path
//                    works too)
//   --trace-out=F    enable the flight recorder and write a Chrome
//                    trace-event JSON (Perfetto-loadable) to F at exit
//   --metrics-listen=IP:PORT  serve a Prometheus-style text snapshot of the
//                    obs::Registry counters over HTTP while the bench runs
//
// The default (no flags) is a quick profile that finishes in minutes and
// still reproduces the figures' *shapes*; EXPERIMENTS.md records both.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bdd/manager.hpp"
#include "eval/datasets.hpp"
#include "fib/prefix_index.hpp"
#include "eval/dist_run.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "obs/export.hpp"
#include "obs/metrics_server.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pred/atom_set.hpp"

// Stamped into the --json reports by bench/CMakeLists.txt; the fallbacks
// keep common.hpp includable from other targets (tests) without the stamps.
#ifndef TULKUN_GIT_DESCRIBE
#define TULKUN_GIT_DESCRIBE "unknown"
#endif
#ifndef TULKUN_BUILD_PRESET
#define TULKUN_BUILD_PRESET "unknown"
#endif

namespace tulkun::bench {

/// Bump when the meaning or naming of existing --json keys changes (adding
/// keys is not a bump); lets downstream plotting scripts reject stale files.
/// v3: sharded sections carry predicate-tier and gc counters, and the
/// top-level `atoms_enabled` records the fast-path switch.
inline constexpr std::uint64_t kJsonSchemaVersion = 3;

/// Flat key -> value summary written as one JSON object. Keys are bench
/// identifiers we mint ourselves (dataset.tool.metric), so no escaping.
class JsonReport {
 public:
  void add(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(9);
    os << value;
    fields_.emplace_back(key, os.str());
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }

  /// No-op when `path` is empty (no --json flag given). Every report leads
  /// with provenance: schema version, the git describe of the build, the
  /// CMake preset, and whether trace points were compiled in/enabled.
  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    out << "{\n";
    out << "  \"schema_version\": " << kJsonSchemaVersion << ",\n";
    out << "  \"git_describe\": \"" << TULKUN_GIT_DESCRIBE << "\",\n";
    out << "  \"build_preset\": \"" << TULKUN_BUILD_PRESET << "\",\n";
    out << "  \"trace_compiled_in\": " << (obs::kTraceCompiledIn ? 1 : 0)
        << ",\n";
    out << "  \"trace_enabled\": " << (obs::trace_enabled() ? 1 : 0)
        << ",\n";
    out << "  \"atoms_enabled\": " << (pred::atom_path_enabled() ? 1 : 0)
        << (fields_.empty() ? "" : ",") << "\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out << "  \"" << fields_[i].first << "\": " << fields_[i].second
          << (i + 1 < fields_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    std::cout << "\nwrote " << path << "\n";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

struct Args {
  bool full = false;
  std::size_t updates = 100;
  std::size_t max_destinations = 4;
  std::size_t fault_scenes = 8;
  std::uint64_t seed = 42;
  std::size_t shards = 0;  // 0 = hardware concurrency
  std::size_t plan_workers = 1;    // PlanService concurrency (0 = hw threads)
  bool plan_incremental = true;    // PlanService delta replanning
  std::size_t gc_nodes = 0;  // per-device bdd gc threshold (0 = off)
  double drop_fraction = 0.0;  // Drop-class share of incremental inserts
  std::string transport;   // empty = skip the distributed section
  std::size_t dist_procs = 2;
  std::string json_path;
  std::string trace_out;       // empty = flight recorder stays disabled
  std::string metrics_listen;  // empty = no metrics endpoint

  static Args parse(int argc, char** argv) {
    Args a;
    pred::apply_atom_env_overrides();  // TULKUN_ATOMS; --atoms wins below
    if (const char* env = std::getenv("TULKUN_SHARDS")) {
      // Ignore empty/garbage environment values (flags still win below).
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') a.shards = v;
    }
    if (const char* env = std::getenv("TULKUN_PLAN_WORKERS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') a.plan_workers = v;
    }
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&](const char* prefix) -> const char* {
        return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                         : nullptr;
      };
      if (arg == "--full") {
        a.full = true;
        a.updates = 1000;
        a.max_destinations = 0;
        a.fault_scenes = 50;
      } else if (const char* v = value("--updates=")) {
        a.updates = std::stoul(v);
      } else if (const char* v = value("--max-dst=")) {
        a.max_destinations = std::stoul(v);
      } else if (const char* v = value("--scenes=")) {
        a.fault_scenes = std::stoul(v);
      } else if (const char* v = value("--seed=")) {
        a.seed = std::stoull(v);
      } else if (const char* v = value("--shards=")) {
        a.shards = std::stoul(v);
      } else if (const char* v = value("--plan-workers=")) {
        a.plan_workers = std::stoul(v);
      } else if (const char* v = value("--plan-incremental=")) {
        a.plan_incremental = std::string(v) != "0";
      } else if (const char* v = value("--atoms=")) {
        pred::set_atom_path_enabled(std::string(v) != "0");
      } else if (const char* v = value("--fib-index=")) {
        fib::set_prefix_index_enabled(std::string(v) != "0");
      } else if (const char* v = value("--gc-nodes=")) {
        a.gc_nodes = std::stoul(v);
      } else if (const char* v = value("--drop=")) {
        a.drop_fraction = std::stod(v);
      } else if (const char* v = value("--transport=")) {
        a.transport = v;
      } else if (const char* v = value("--procs=")) {
        a.dist_procs = std::stoul(v);
      } else if (const char* v = value("--json=")) {
        a.json_path = v;
      } else if (arg == "--json" && i + 1 < argc) {
        a.json_path = argv[++i];
      } else if (const char* v = value("--trace-out=")) {
        a.trace_out = v;
      } else if (const char* v = value("--metrics-listen=")) {
        a.metrics_listen = v;
      } else if (arg == "--help") {
        std::cout << "flags: --full --updates=N --max-dst=N --scenes=N "
                     "--seed=N --shards=N --plan-workers=N "
                     "--plan-incremental=0|1 --atoms=0|1 --fib-index=0|1 "
                     "--gc-nodes=N --drop=F "
                     "--transport=inproc|uds|tcp "
                     "--procs=N --json <path> --trace-out=FILE "
                     "--metrics-listen=IP:PORT\n";
        std::exit(0);
      }
    }
    return a;
  }

  [[nodiscard]] eval::HarnessOptions harness_options() const {
    eval::HarnessOptions opts;
    opts.seed = seed;
    opts.max_destinations = max_destinations;
    opts.engine.runtime_shards = shards;
    opts.plan_workers = plan_workers;
    opts.plan_incremental = plan_incremental;
    opts.engine.bdd_gc_node_threshold = gc_nodes;
    opts.drop_fraction = drop_fraction;
    return opts;
  }

  /// Datasets for this run: the quick profile covers each network class;
  /// --full runs the paper's 13.
  [[nodiscard]] std::vector<eval::DatasetSpec> datasets() const {
    if (full) return eval::all_datasets();
    std::vector<eval::DatasetSpec> out;
    for (const char* name :
         {"INet2", "B4-13", "STFD", "AT1-1", "AT1-2", "FT-48", "NGDC"}) {
      out.push_back(eval::dataset(name));
    }
    return out;
  }

  [[nodiscard]] std::vector<eval::DatasetSpec> wan_datasets() const {
    if (full) return eval::wan_lan_datasets();
    std::vector<eval::DatasetSpec> out;
    for (const char* name : {"INet2", "B4-13", "STFD"}) {
      out.push_back(eval::dataset(name));
    }
    return out;
  }
};

/// Appends the process-global predicate-tier and BDD-gc counters under
/// `prefix` (cumulative over the process; sections that want deltas
/// snapshot pred::atom_counters_snapshot() themselves).
inline void add_pred_counters(JsonReport& json, const std::string& prefix) {
  const auto c = pred::atom_counters_snapshot();
  json.add(prefix + "pred.atom_hits", c.atom_hits);
  json.add(prefix + "pred.bdd_fallbacks", c.bdd_fallbacks);
  json.add(prefix + "pred.promotions", c.promotions);
  json.add(prefix + "pred.promote_failures", c.promote_failures);
  json.add(prefix + "pred.demotions", c.demotions);
  json.add(prefix + "pred.materializations", c.materializations);
  json.add(prefix + "pred.atom_table_size", c.atom_table_size);
  json.add(prefix + "pred.arena_bytes", c.arena_bytes);
  const auto gc = bdd::gc_totals();
  json.add(prefix + "bdd.gc_runs", gc.runs);
  json.add(prefix + "bdd.gc_reclaimed_nodes", gc.reclaimed_nodes);
}

/// Observability scope for a bench main: enables the flight recorder when
/// --trace-out is set (writing the merged Chrome trace at destruction) and
/// serves live obs::Registry counters while --metrics-listen is set; also
/// exports the predicate-tier/gc counters as registry series for the
/// Prometheus endpoint. Construct once at the top of main, after
/// Args::parse.
struct ObsSession {
  explicit ObsSession(const Args& args) : trace_out(args.trace_out) {
    pred_provider = obs::Registry::instance().add_provider(
        [](std::vector<obs::Sample>& out) {
          const auto c = pred::atom_counters_snapshot();
          out.push_back({"pred_atom_hits", double(c.atom_hits)});
          out.push_back({"pred_bdd_fallbacks", double(c.bdd_fallbacks)});
          out.push_back({"pred_promotions", double(c.promotions)});
          out.push_back({"pred_promote_failures",
                         double(c.promote_failures)});
          out.push_back({"pred_demotions", double(c.demotions)});
          out.push_back({"pred_materializations",
                         double(c.materializations)});
          out.push_back({"pred_atom_table_size", double(c.atom_table_size)});
          out.push_back({"pred_arena_bytes", double(c.arena_bytes)});
          const auto gc = bdd::gc_totals();
          out.push_back({"bdd_gc_runs", double(gc.runs)});
          out.push_back({"bdd_gc_reclaimed_nodes",
                         double(gc.reclaimed_nodes)});
        });
    if (!trace_out.empty()) {
      if (!obs::kTraceCompiledIn) {
        std::cerr << "--trace-out ignored: built with TULKUN_TRACE=OFF\n";
      }
      obs::set_trace_enabled(true);
    }
    if (!args.metrics_listen.empty()) {
      server = std::make_unique<obs::MetricsServer>();
      server->start(args.metrics_listen);
      std::cout << "metrics: http://" << server->address() << "/metrics\n";
    }
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Queue trace snapshots shipped back from other processes (the device
  /// ranks of a dist_run) for inclusion in the merged timeline.
  void add_traces(std::vector<obs::TraceSnapshot> remote) {
    for (auto& t : remote) snaps.push_back(std::move(t));
  }

  ~ObsSession() {
    if (server) server->stop();
    if (trace_out.empty() || !obs::kTraceCompiledIn) return;
    snaps.push_back(obs::drain_snapshot());
    try {
      obs::write_chrome_trace_file(trace_out, snaps);
      std::cout << "wrote trace " << trace_out << "\n";
    } catch (const std::exception& e) {
      std::cerr << "cannot write trace " << trace_out << ": " << e.what()
                << "\n";
    }
  }

  std::string trace_out;
  std::vector<obs::TraceSnapshot> snaps;
  std::unique_ptr<obs::MetricsServer> server;
  obs::Registry::ProviderHandle pred_provider;
};

/// Runs the sharded worker-pool runtime on one dataset and reports wall
/// times plus the runtime counters; shared by the bench mains.
inline void run_sharded_section(const eval::DatasetSpec& spec,
                                const Args& args, std::size_t n_updates,
                                JsonReport& json) {
  eval::Harness h(spec, args.harness_options());
  auto run = h.run_distributed(n_updates);
  std::cout << "\n== Sharded runtime replay (" << spec.name << ", "
            << run.shards << " shards, wall clock) ==\n";
  std::cout << "  burst: " << format_duration(run.burst_wall_seconds)
            << ", violations: " << run.violations << "\n";
  if (!run.incremental_wall_seconds.empty()) {
    std::cout << "  incremental: p50 "
              << format_duration(run.incremental_wall_seconds.quantile(0.5))
              << ", p99 "
              << format_duration(run.incremental_wall_seconds.quantile(0.99))
              << " over " << run.incremental_wall_seconds.size()
              << " updates\n";
  }
  runtime::print_metrics(std::cout, run.metrics);

  const std::string p = "sharded." + spec.name + ".";
  json.add(p + "shards", static_cast<std::uint64_t>(run.shards));
  json.add(p + "burst_wall_seconds", run.burst_wall_seconds);
  if (!run.incremental_wall_seconds.empty()) {
    json.add(p + "incremental_wall_p50",
             run.incremental_wall_seconds.quantile(0.5));
    json.add(p + "incremental_wall_p99",
             run.incremental_wall_seconds.quantile(0.99));
  }
  json.add(p + "transfer_cache_hit_rate",
           run.metrics.transfer_cache_hit_rate());
  json.add(p + "mean_batch_size", run.metrics.mean_batch_size());
  json.add(p + "frames", run.metrics.frames);
  json.add(p + "envelopes", run.metrics.envelopes);
  json.add(p + "phase.lec_delta_seconds", run.metrics.lec_delta_seconds);
  json.add(p + "phase.recompute_seconds", run.metrics.recompute_seconds);
  json.add(p + "phase.emit_seconds", run.metrics.emit_seconds);
  json.add(p + "channel.roots", run.metrics.channel_roots);
  json.add(p + "channel.nodes_shipped", run.metrics.channel_nodes_shipped);
  json.add(p + "channel.resets", run.metrics.channel_resets);
  json.add(p + "gc.runs", run.metrics.gc_runs);
  json.add(p + "gc.reclaimed_nodes", run.metrics.gc_reclaimed_nodes);
  add_pred_counters(json, p);
  for (std::size_t k = 0; k < fib::kNumIndexKinds; ++k) {
    const auto& c = run.metrics.index[k];
    if (c.queries == 0) continue;
    const std::string ip =
        p + "index." + fib::index_kind_name(static_cast<fib::IndexKind>(k)) +
        ".";
    json.add(ip + "queries", c.queries);
    json.add(ip + "skip_rate", c.skip_rate());
    json.add(ip + "full_scans", c.full_scans);
  }
}

/// Runs the multi-process DistributedRuntime on one dataset over the
/// transport named by --transport (the binary must call
/// eval::maybe_run_device_role first thing in main, because the uds/tcp
/// paths re-exec it for the device processes).
inline void run_transport_section(const eval::DatasetSpec& spec,
                                  const Args& args, std::size_t n_updates,
                                  JsonReport& json,
                                  ObsSession* obs_session = nullptr) {
  eval::DistOptions dist;
  dist.kind = net::parse_transport_kind(args.transport);
  dist.device_procs = args.dist_procs;
  dist.n_updates = n_updates;
  dist.collect_trace = obs_session != nullptr && obs::trace_enabled();
  auto run = eval::dist_run(spec, args.harness_options(), dist);
  if (obs_session) obs_session->add_traces(std::move(run.traces));

  std::cout << "\n== Distributed runtime (" << spec.name << ", "
            << args.dist_procs << " device procs over " << args.transport
            << ") ==\n";
  std::cout << "  burst: " << format_duration(run.burst_wall_seconds)
            << ", violations: " << run.violations << "\n";
  if (!run.incremental_wall_seconds.empty()) {
    std::cout << "  incremental: p50 "
              << format_duration(run.incremental_wall_seconds.quantile(0.5))
              << ", p99 "
              << format_duration(run.incremental_wall_seconds.quantile(0.99))
              << " over " << run.incremental_wall_seconds.size()
              << " updates\n";
  }
  runtime::print_metrics(std::cout, run.metrics);

  const std::string p = "dist." + spec.name + "." + args.transport + ".";
  json.add(p + "device_procs", static_cast<std::uint64_t>(args.dist_procs));
  json.add(p + "burst_wall_seconds", run.burst_wall_seconds);
  if (!run.incremental_wall_seconds.empty()) {
    json.add(p + "incremental_wall_p50",
             run.incremental_wall_seconds.quantile(0.5));
    json.add(p + "incremental_wall_p99",
             run.incremental_wall_seconds.quantile(0.99));
  }
  json.add(p + "violations", run.violations);
  json.add(p + "frames", run.metrics.frames);
  json.add(p + "envelopes", run.metrics.envelopes);
  json.add(p + "frame_bytes", run.metrics.frame_bytes);
  const auto& t = run.metrics.transport;
  json.add(p + "wire.frames_sent", t.frames_sent);
  json.add(p + "wire.bytes_sent", t.bytes_sent);
  json.add(p + "wire.frames_received", t.frames_received);
  json.add(p + "wire.bytes_received", t.bytes_received);
  json.add(p + "wire.reconnects", t.reconnects);
  json.add(p + "wire.heartbeat_misses", t.heartbeat_misses);
  json.add(p + "wire.protocol_errors", t.protocol_errors);
  json.add(p + "wire.send_queue_peak", t.send_queue_peak);
}

}  // namespace tulkun::bench
