// Shared plumbing for the figure-reproduction bench binaries.
//
// Every binary accepts:
//   --full           run all 13 datasets at full update counts (slow)
//   --updates=N      incremental updates per dataset
//   --max-dst=N      destination sample per dataset (0 = all)
//   --seed=N
//
// The default (no flags) is a quick profile that finishes in minutes and
// still reproduces the figures' *shapes*; EXPERIMENTS.md records both.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/datasets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"

namespace tulkun::bench {

struct Args {
  bool full = false;
  std::size_t updates = 100;
  std::size_t max_destinations = 4;
  std::size_t fault_scenes = 8;
  std::uint64_t seed = 42;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&](const char* prefix) -> const char* {
        return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                         : nullptr;
      };
      if (arg == "--full") {
        a.full = true;
        a.updates = 1000;
        a.max_destinations = 0;
        a.fault_scenes = 50;
      } else if (const char* v = value("--updates=")) {
        a.updates = std::stoul(v);
      } else if (const char* v = value("--max-dst=")) {
        a.max_destinations = std::stoul(v);
      } else if (const char* v = value("--scenes=")) {
        a.fault_scenes = std::stoul(v);
      } else if (const char* v = value("--seed=")) {
        a.seed = std::stoull(v);
      } else if (arg == "--help") {
        std::cout << "flags: --full --updates=N --max-dst=N --scenes=N "
                     "--seed=N\n";
        std::exit(0);
      }
    }
    return a;
  }

  [[nodiscard]] eval::HarnessOptions harness_options() const {
    eval::HarnessOptions opts;
    opts.seed = seed;
    opts.max_destinations = max_destinations;
    return opts;
  }

  /// Datasets for this run: the quick profile covers each network class;
  /// --full runs the paper's 13.
  [[nodiscard]] std::vector<eval::DatasetSpec> datasets() const {
    if (full) return eval::all_datasets();
    std::vector<eval::DatasetSpec> out;
    for (const char* name :
         {"INet2", "B4-13", "STFD", "AT1-1", "AT1-2", "FT-48", "NGDC"}) {
      out.push_back(eval::dataset(name));
    }
    return out;
  }

  [[nodiscard]] std::vector<eval::DatasetSpec> wan_datasets() const {
    if (full) return eval::wan_lan_datasets();
    std::vector<eval::DatasetSpec> out;
    for (const char* name : {"INet2", "B4-13", "STFD"}) {
      out.push_back(eval::dataset(name));
    }
    return out;
  }
};

}  // namespace tulkun::bench
