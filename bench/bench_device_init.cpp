// Figure 14 (§9.4): on-device initialization overhead — per-device total
// time, maximal memory, and CPU load CDFs, under the four switch-CPU
// profiles (Mellanox / UfiSpace / Edgecore x86, Centec ARM).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);

  std::cout << "\n== Figure 14: initialization overhead CDFs ==\n";
  for (const auto& spec : args.wan_datasets()) {
    eval::Harness h(spec, args.harness_options());
    std::cout << "\n-- dataset " << spec.name << " --\n";
    for (const auto& profile : eval::switch_profiles()) {
      const auto oh = h.measure_overhead(profile, /*n_updates=*/0);
      eval::print_cdf(std::cout, profile.name + " init time      ",
                      oh.init_seconds, /*as_duration=*/true);
      eval::print_cdf(std::cout, profile.name + " init memory    ",
                      oh.init_memory, /*as_duration=*/false);
      std::cout << profile.name << " init CPU load  : max="
                << oh.init_cpu.max() << "\n";
    }
  }
  return 0;
}
