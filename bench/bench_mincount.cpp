// Ablation ◆: Proposition 1 minimal counting information (DESIGN.md
// decision 3) — message count and wire bytes with the optimization on vs
// off, on a chained-diamond topology (the paper's worst case for count-set
// growth: ALL-type replication at every spine plus a lossy ANY arm makes
// the per-universe count set grow with chain length).
#include <cstdio>
#include <iostream>

#include "runtime/event_sim.hpp"
#include "spec/builtins.hpp"
#include "topo/topology.hpp"

using namespace tulkun;

namespace {

struct Diamonds {
  topo::Topology topo;
  std::vector<DeviceId> spine;
  std::vector<DeviceId> arm_a;
  std::vector<DeviceId> arm_b;
  std::vector<DeviceId> stubs;  // dead-end neighbors of the b arms
};

Diamonds chained_diamonds(std::uint32_t n) {
  Diamonds d;
  d.spine.push_back(d.topo.add_device("s0"));
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto a = d.topo.add_device("a" + std::to_string(i));
    const auto b = d.topo.add_device("b" + std::to_string(i));
    const auto x = d.topo.add_device("x" + std::to_string(i));
    const auto next = d.topo.add_device("s" + std::to_string(i + 1));
    d.topo.add_link(d.spine.back(), a, 1e-3);
    d.topo.add_link(d.spine.back(), b, 1e-3);
    d.topo.add_link(a, next, 1e-3);
    d.topo.add_link(b, next, 1e-3);
    d.topo.add_link(b, x, 1e-3);
    d.arm_a.push_back(a);
    d.arm_b.push_back(b);
    d.stubs.push_back(x);
    d.spine.push_back(next);
  }
  d.topo.attach_prefix(d.spine.back(),
                       packet::Ipv4Prefix::parse("10.0.0.0/24"));
  return d;
}

/// Spine replicates to both arms (ALL); the b arm ANYs between the next
/// spine and a dead stub, so each diamond adds a lossy universe choice.
fib::NetworkFib diamond_plane(Diamonds& d) {
  fib::NetworkFib net(d.topo);
  const auto prefix = packet::Ipv4Prefix::parse("10.0.0.0/24");
  const auto add = [&](DeviceId dev, fib::Action action) {
    fib::Rule r;
    r.priority = 10;
    r.dst_prefix = prefix;
    r.action = std::move(action);
    net.table(dev).insert(r);
  };
  const std::size_t n = d.arm_a.size();
  for (std::size_t i = 0; i < n; ++i) {
    add(d.spine[i], fib::Action::forward_all({d.arm_a[i], d.arm_b[i]}));
    add(d.arm_a[i], fib::Action::forward(d.spine[i + 1]));
    add(d.arm_b[i],
        fib::Action::forward_any({d.spine[i + 1], d.stubs[i]}));
    // Stubs have no rule: they drop.
  }
  add(d.spine.back(), fib::Action::deliver());
  return net;
}

struct RunResult {
  double time = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

RunResult run(std::uint32_t n, bool minimize) {
  auto d = chained_diamonds(n);
  auto net = diamond_plane(d);
  auto& space = net.space();
  spec::Builtins b(d.topo, space);
  const DeviceId dst = d.spine.back();
  auto pkt = space.dst_prefix(d.topo.prefixes(dst).front());
  const auto inv = b.reachability(pkt, d.spine.front(), dst);

  planner::Planner planner(d.topo, space);
  const auto plan = planner.plan(inv);

  dvm::EngineConfig ecfg;
  ecfg.minimize_counting_info = minimize;
  runtime::SimConfig scfg;
  scfg.account_bytes = true;
  runtime::EventSimulator sim(d.topo, scfg);
  sim.make_devices(space, ecfg);
  sim.install(plan);
  for (DeviceId dev = 0; dev < d.topo.device_count(); ++dev) {
    sim.post_initialize(dev, net.table(dev), 0.0);
  }
  RunResult r;
  r.time = sim.run();
  r.messages = sim.stats().messages;
  r.bytes = sim.stats().bytes;
  return r;
}

}  // namespace

int main() {
  std::cout << "\n== Ablation: Prop. 1 minimal counting information ==\n";
  std::cout << "chained diamonds: ALL replication + lossy ANY arm per "
               "stage\n\n";
  std::cout << "diamonds  minimize  verify-time  messages  wire-bytes\n";
  for (const std::uint32_t n : {2u, 4u, 6u, 8u}) {
    for (const bool minimize : {true, false}) {
      const auto r = run(n, minimize);
      std::printf("%-9u %-9s %-12s %-9llu %s\n", n,
                  minimize ? "on" : "off",
                  format_duration(r.time).c_str(),
                  static_cast<unsigned long long>(r.messages),
                  format_bytes(static_cast<double>(r.bytes)).c_str());
    }
  }
  std::cout << "\n(with the optimization on, each node sends only min(c) "
               "for the exist>=1 invariant;\n off, count sets grow with "
               "the number of lossy universes — larger messages)\n";
  return 0;
}
