// Figures 11b/11c (and §9.2 Experiment 2): incremental verification —
// fraction under 10 ms and the 80% quantile, per tool per dataset.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);
  bench::JsonReport json;
  bench::ObsSession obs(args);

  std::vector<eval::Harness::Result> results;
  for (const auto& spec : args.datasets()) {
    eval::Harness h(spec, args.harness_options());
    std::cout << "running " << spec.name << " with " << args.updates
              << " updates..." << std::endl;
    results.push_back(h.run(/*with_baselines=*/true, args.updates));
  }
  eval::print_under_threshold_table(std::cout, results, 0.010);
  eval::print_quantile_table(std::cout, results, 0.80);

  for (const auto& r : results) {
    for (const auto& row : r.rows) {
      if (row.memory_out || row.incremental_seconds.empty()) continue;
      const auto& vals = row.incremental_seconds.values();
      std::size_t under = 0;
      for (const double v : vals) under += v <= 0.010 ? 1 : 0;
      const std::string p = r.dataset + "." + row.tool + ".";
      json.add(p + "frac_under_10ms",
               static_cast<double>(under) / static_cast<double>(vals.size()));
      json.add(p + "incremental_p80", row.incremental_seconds.quantile(0.80));
    }
  }

  // The same update stream on the wall-clock worker-pool runtime.
  bench::run_sharded_section(eval::dataset("INet2"), args, args.updates,
                             json);

  // Large-FIB profile (the hot-path indexing target, BENCH_HOTPATH.json):
  // same WAN topology, ~62k rules, so per-update cost is dominated by the
  // device table walks rather than runtime overhead.
  eval::DatasetSpec xl = eval::dataset("INet2");
  xl.name = "INet2-XL";
  xl.prefixes_per_device = 96;
  xl.extra_rules = 7;
  auto xl_args = args;
  xl_args.max_destinations = 6;
  bench::run_sharded_section(xl, xl_args, args.updates, json);

  // Drop-class / /0-hull profile: half the inserts blackhole a scattered
  // prefix, growing per-device Drop classes whose hull is 0.0.0.0/0 — the
  // workload the destination-hull index cannot prune, so every update cost
  // is dominated by set ops on the wide class predicate (the atom tier's
  // target; compare with --atoms=0).
  eval::DatasetSpec dropspec = xl;
  dropspec.name = "INet2-XL-drop";
  auto drop_args = xl_args;
  if (drop_args.drop_fraction == 0.0) drop_args.drop_fraction = 0.5;
  bench::run_sharded_section(dropspec, drop_args, args.updates, json);

  json.write(args.json_path);
  return 0;
}
