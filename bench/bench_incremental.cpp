// Figures 11b/11c (and §9.2 Experiment 2): incremental verification —
// fraction under 10 ms and the 80% quantile, per tool per dataset.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);

  std::vector<eval::Harness::Result> results;
  for (const auto& spec : args.datasets()) {
    eval::Harness h(spec, args.harness_options());
    std::cout << "running " << spec.name << " with " << args.updates
              << " updates..." << std::endl;
    results.push_back(h.run(/*with_baselines=*/true, args.updates));
  }
  eval::print_under_threshold_table(std::cout, results, 0.010);
  eval::print_quantile_table(std::cout, results, 0.80);
  return 0;
}
