// Planner benchmarks.
//
// Figure 13: planner latency to compute the k-link-failure-tolerant
// DPVNets, k = 0..3 (k=3 only under --full; scene counts are capped and
// flagged when the combinatorics exceed the cap, as discussed in
// EXPERIMENTS.md).
//
// Planner scaling (BENCH_PLANNER.json): multi-tenant PlanService profiles
// at 1k/5k concurrent intents — serial vs parallel commit walls, a modeled
// 8-worker makespan (list scheduling over the measured per-invariant plan
// times; see EXPERIMENTS.md for why the model is reported alongside the
// real wall on few-core hosts), incremental replan latency under link
// churn vs the full-replan baseline, union-DAG sharing, and DFA-cache
// effectiveness. Digest equality between the serial and parallel services
// is asserted and recorded.
#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <set>
#include <thread>

#include "common.hpp"
#include "fib/update_stream.hpp"
#include "planner/plan_digest.hpp"
#include "planner/plan_service.hpp"
#include "planner/union_net.hpp"
#include "spec/builtins.hpp"
#include "topo/generators.hpp"

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// List-scheduled makespan: tasks placed in id (FIFO) order onto the
/// least-loaded of `workers` workers. With measured per-invariant plan
/// times as input this models the parallel commit's critical path without
/// needing `workers` physical cores.
double modeled_makespan(const std::vector<double>& task_seconds,
                        std::size_t workers) {
  std::vector<double> load(workers, 0.0);
  for (const double t : task_seconds) {
    *std::min_element(load.begin(), load.end()) += t;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);
  bench::JsonReport json;
  const std::uint32_t max_k = args.full ? 3 : 2;
  const std::size_t scene_cap = args.full ? 4096 : 512;

  std::cout << "\n== Figure 13: DPVNet computation latency ==\n";
  std::cout << "dataset     ";
  for (std::uint32_t k = 0; k <= max_k; ++k) {
    std::cout << "k=" << k << "            ";
  }
  std::cout << "\n";

  for (const auto& spec : args.wan_datasets()) {
    eval::Harness h(spec, args.harness_options());
    (void)h.plan_latency(0, scene_cap);  // warm caches before timing
    std::cout << spec.name;
    for (std::size_t pad = spec.name.size(); pad < 12; ++pad) {
      std::cout << ' ';
    }
    for (std::uint32_t k = 0; k <= max_k; ++k) {
      const auto r = h.plan_latency(k, scene_cap);
      std::cout << format_duration(r.seconds) << " (" << r.scenes
                << (r.capped ? "* " : " ") << "sc)  " << std::flush;
    }
    std::cout << "\n";
  }
  std::cout << "(* scene cap hit: sampled scenes, see EXPERIMENTS.md)\n";

  // Ablation ◆: §6 scene reuse on/off for k=2 (DESIGN.md decision list).
  std::cout << "\n== Ablation: §6 subset-scene reuse (k=2) ==\n";
  std::cout << "dataset     reuse-on       reuse-off\n";
  for (const auto& spec : args.wan_datasets()) {
    packet::PacketSpace space;
    const auto topo = eval::build_topology(spec);
    spec::Builtins b(topo, space);
    auto pkt = space.none();
    for (const auto& p : topo.prefixes(0)) pkt |= space.dst_prefix(p);
    auto inv = b.shortest_plus_reachability(
        pkt, std::min<DeviceId>(1, static_cast<DeviceId>(
                                       topo.device_count() - 1)),
        0, 2);
    inv.faults.any_k = 2;

    std::cout << spec.name;
    for (std::size_t pad = spec.name.size(); pad < 12; ++pad) std::cout << ' ';
    for (const bool reuse : {true, false}) {
      dpvnet::BuildOptions opts;
      opts.max_scenes = scene_cap;
      opts.scene_reuse = reuse;
      dpvnet::BuildStats stats;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        (void)dpvnet::build_dpvnet(topo, inv, opts, &stats);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s (%zu enum)",
                      format_duration(secs).c_str(),
                      stats.scenes_enumerated);
        std::cout << buf << "  ";
      } catch (const Error&) {
        std::cout << "scene-cap     ";
      }
    }
    std::cout << "\n";
  }

  // == Planner scaling: multi-tenant intent sets ==
  //
  // Data-center-scale intent counts on one mid-size WAN: per-(src, dst)
  // shortest+1 reachability stamped out 1000/5000 times. "Serial" is the
  // pre-PlanService behavior (replan everything, one thread); the modeled
  // 8-worker makespan and the incremental flap latency are the two
  // headline numbers of BENCH_PLANNER.json.
  const std::size_t host_cores = std::thread::hardware_concurrency();
  json.add("planner.host_cores", static_cast<std::uint64_t>(host_cores));
  constexpr std::size_t kModelWorkers = 8;
  for (const std::size_t n_intents : {std::size_t{1000}, std::size_t{5000}}) {
    const std::string prof = "intents" + std::to_string(n_intents);
    const std::string p = "planner." + prof + ".";
    const int reps = args.full ? 5 : (n_intents >= 5000 ? 1 : 3);

    const auto topo = topo::synthetic_wan("pl", 64, 128, args.seed);
    fib::NetworkFib net(topo);
    auto& space = net.space();
    spec::Builtins b(topo, space);
    std::vector<spec::Invariant> invs;
    invs.reserve(n_intents);
    const auto n = topo.device_count();
    for (std::size_t i = 0; i < n_intents; ++i) {
      const DeviceId dst = static_cast<DeviceId>(i % n);
      DeviceId src = static_cast<DeviceId>((dst + 1 + i / n) % n);
      if (src == dst) src = static_cast<DeviceId>((src + 1) % n);
      invs.push_back(b.shortest_plus_reachability(
          space.dst_prefix(topo.prefixes(dst).front()), src, dst, 1));
    }

    const auto fill = [&](planner::PlanService& svc) {
      for (const auto& inv : invs) svc.add_invariant(inv);
    };
    const auto opts_for = [](std::size_t workers, bool incremental) {
      planner::PlanServiceOptions popts;
      popts.workers = workers;
      popts.incremental = incremental;
      return popts;
    };

    std::vector<double> serial_walls;
    std::vector<double> parallel_walls;
    for (int r = 0; r < reps; ++r) {
      planner::PlanService svc(topo, space, opts_for(1, true));
      fill(svc);
      serial_walls.push_back(svc.commit().seconds);
    }
    for (int r = 0; r < reps; ++r) {
      planner::PlanService svc(topo, space, opts_for(kModelWorkers, true));
      fill(svc);
      parallel_walls.push_back(svc.commit().seconds);
    }
    planner::PlanService serial(topo, space, opts_for(1, true));
    fill(serial);  // kept alive: churn + union sections below
    serial.commit();
    planner::PlanService parallel(topo, space,
                                  opts_for(kModelWorkers, true));
    fill(parallel);
    parallel.commit();

    // Determinism check is part of the bench contract.
    const bool digests_match = serial.digest() == parallel.digest();
    if (!digests_match) {
      std::cerr << "FATAL: serial/parallel plan digests diverge\n";
      return 1;
    }

    std::vector<double> per_plan;
    per_plan.reserve(n_intents);
    for (const auto* plan : serial.plans()) {
      per_plan.push_back(plan->plan_seconds);
    }
    const double serial_sum =
        std::accumulate(per_plan.begin(), per_plan.end(), 0.0);
    const double makespan = modeled_makespan(per_plan, kModelWorkers);

    // Link churn: flap one link; the incremental service replans only the
    // touching intents while the incremental=false service replays the
    // whole set (each down/up commit is one full-replan sample). Links
    // differ hugely in how many intents they carry, so we flap two
    // deterministic representatives: the minimum-support link ("edge", an
    // access link carrying only incident intents — the common real-world
    // flap) and the median-support link ("core", a heavily shared trunk).
    std::map<std::pair<DeviceId, DeviceId>, std::size_t> link_load;
    for (const auto* plan : serial.plans()) {
      std::set<std::pair<DeviceId, DeviceId>> on_plan;
      const auto& dag = *plan->dag;
      for (std::size_t id = 0; id < dag.node_count(); ++id) {
        const auto& nd = dag.node(id);
        for (const auto& e : nd.down) {
          DeviceId a = nd.dev;
          DeviceId c = dag.node(e.to).dev;
          if (a > c) std::swap(a, c);
          on_plan.insert({a, c});
        }
      }
      for (const auto& l : on_plan) ++link_load[l];
    }
    std::vector<std::pair<std::size_t, std::pair<DeviceId, DeviceId>>> load;
    for (const auto& [l, c] : link_load) load.push_back({c, l});
    std::sort(load.begin(), load.end());
    const LinkId edge_flap{load.front().second.first,
                           load.front().second.second};
    const LinkId core_flap{load[load.size() / 2].second.first,
                           load[load.size() / 2].second.second};

    struct FlapResult {
      double inc_median = 0.0;
      std::size_t replanned = 0;
    };
    const auto flap_cycle = [&](const LinkId& flap) {
      FlapResult out;
      std::vector<double> walls;
      for (int r = 0; r < std::max(reps, 3); ++r) {
        serial.set_link_state(flap, false);
        auto delta = serial.commit();
        out.replanned = delta.replanned.size();
        walls.push_back(delta.seconds);
        serial.set_link_state(flap, true);
        walls.push_back(serial.commit().seconds);
      }
      out.inc_median = median(walls);
      return out;
    };
    const auto edge = flap_cycle(edge_flap);
    const auto core = flap_cycle(core_flap);

    std::vector<double> full_walls;
    {
      planner::PlanService full(topo, space, opts_for(1, false));
      fill(full);
      full.commit();
      for (int r = 0; r < (args.full ? 2 : 1); ++r) {
        full.set_link_state(edge_flap, false);
        full_walls.push_back(full.commit().seconds);
        full.set_link_state(edge_flap, true);
        full_walls.push_back(full.commit().seconds);
      }
    }
    const double full_median = median(full_walls);

    // Multi-tenant sharing: intern every plan DAG into one union store.
    planner::UnionDpvNet un;
    for (const auto* plan : serial.plans()) un.add(*plan);
    const double sharing =
        un.total_nodes() == 0
            ? 1.0
            : double(un.node_count()) / double(un.total_nodes());
    const auto dfa = serial.dfa_cache().stats();

    std::cout << "\n== Planner scaling (" << n_intents << " intents, wan64, "
              << host_cores << " host cores) ==\n";
    std::cout << "  serial commit:    " << format_duration(median(serial_walls))
              << "   (sum of per-plan times "
              << format_duration(serial_sum) << ")\n";
    std::cout << "  parallel commit:  "
              << format_duration(median(parallel_walls)) << "   ("
              << kModelWorkers << " workers, real wall on this host)\n";
    std::cout << "  modeled makespan: " << format_duration(makespan) << "   ("
              << kModelWorkers << " workers, list-scheduled; speedup "
              << (makespan > 0 ? serial_sum / makespan : 0) << "x)\n";
    std::cout << "  edge-link flap:   " << format_duration(edge.inc_median)
              << " incremental (" << edge.replanned << "/" << n_intents
              << " intents) vs " << format_duration(full_median)
              << " full (speedup "
              << (edge.inc_median > 0 ? full_median / edge.inc_median : 0)
              << "x)\n";
    std::cout << "  core-link flap:   " << format_duration(core.inc_median)
              << " incremental (" << core.replanned << "/" << n_intents
              << " intents, speedup "
              << (core.inc_median > 0 ? full_median / core.inc_median : 0)
              << "x)\n";
    std::cout << "  union DAG:        " << un.node_count() << " shared / "
              << un.total_nodes() << " total nodes (ratio " << sharing
              << ")\n";
    std::cout << "  dfa cache:        " << dfa.hits << " hits, " << dfa.misses
              << " misses\n";

    json.add(p + "intents", static_cast<std::uint64_t>(n_intents));
    json.add(p + "topo_devices", static_cast<std::uint64_t>(n));
    json.add(p + "topo_links",
             static_cast<std::uint64_t>(topo.link_count()));
    json.add(p + "reps", static_cast<std::uint64_t>(reps));
    json.add(p + "serial_wall_seconds_median", median(serial_walls));
    json.add(p + "serial_plan_seconds_sum", serial_sum);
    json.add(p + "parallel_wall_seconds_median", median(parallel_walls));
    json.add(p + "parallel_workers",
             static_cast<std::uint64_t>(kModelWorkers));
    json.add(p + "modeled_makespan_8w_seconds", makespan);
    json.add(p + "modeled_speedup_8w",
             makespan > 0 ? serial_sum / makespan : 0.0);
    json.add(p + "digest", serial.digest());
    json.add(p + "digests_match",
             static_cast<std::uint64_t>(digests_match ? 1 : 0));
    json.add(p + "flap_full_replan_seconds_median", full_median);
    json.add(p + "flap_edge_incremental_seconds_median", edge.inc_median);
    json.add(p + "flap_edge_speedup",
             edge.inc_median > 0 ? full_median / edge.inc_median : 0.0);
    json.add(p + "flap_edge_replanned_intents",
             static_cast<std::uint64_t>(edge.replanned));
    json.add(p + "flap_core_incremental_seconds_median", core.inc_median);
    json.add(p + "flap_core_speedup",
             core.inc_median > 0 ? full_median / core.inc_median : 0.0);
    json.add(p + "flap_core_replanned_intents",
             static_cast<std::uint64_t>(core.replanned));
    json.add(p + "union.shared_nodes",
             static_cast<std::uint64_t>(un.node_count()));
    json.add(p + "union.total_nodes",
             static_cast<std::uint64_t>(un.total_nodes()));
    json.add(p + "union.sharing_ratio", sharing);
    json.add(p + "dfa.hits", dfa.hits);
    json.add(p + "dfa.misses", dfa.misses);
    json.add(p + "dfa.entries",
             static_cast<std::uint64_t>(serial.dfa_cache().size()));
  }

  json.write(args.json_path);
  return 0;
}
