// Figure 13: planner latency to compute the k-link-failure-tolerant
// DPVNets, k = 0..3 (k=3 only under --full; scene counts are capped and
// flagged when the combinatorics exceed the cap, as discussed in
// EXPERIMENTS.md).
#include <chrono>

#include "common.hpp"
#include "spec/builtins.hpp"

int main(int argc, char** argv) {
  using namespace tulkun;
  const auto args = bench::Args::parse(argc, argv);
  const std::uint32_t max_k = args.full ? 3 : 2;
  const std::size_t scene_cap = args.full ? 4096 : 512;

  std::cout << "\n== Figure 13: DPVNet computation latency ==\n";
  std::cout << "dataset     ";
  for (std::uint32_t k = 0; k <= max_k; ++k) {
    std::cout << "k=" << k << "            ";
  }
  std::cout << "\n";

  for (const auto& spec : args.wan_datasets()) {
    eval::Harness h(spec, args.harness_options());
    (void)h.plan_latency(0, scene_cap);  // warm caches before timing
    std::cout << spec.name;
    for (std::size_t pad = spec.name.size(); pad < 12; ++pad) {
      std::cout << ' ';
    }
    for (std::uint32_t k = 0; k <= max_k; ++k) {
      const auto r = h.plan_latency(k, scene_cap);
      std::cout << format_duration(r.seconds) << " (" << r.scenes
                << (r.capped ? "* " : " ") << "sc)  " << std::flush;
    }
    std::cout << "\n";
  }
  std::cout << "(* scene cap hit: sampled scenes, see EXPERIMENTS.md)\n";

  // Ablation ◆: §6 scene reuse on/off for k=2 (DESIGN.md decision list).
  std::cout << "\n== Ablation: §6 subset-scene reuse (k=2) ==\n";
  std::cout << "dataset     reuse-on       reuse-off\n";
  for (const auto& spec : args.wan_datasets()) {
    packet::PacketSpace space;
    const auto topo = eval::build_topology(spec);
    spec::Builtins b(topo, space);
    auto pkt = space.none();
    for (const auto& p : topo.prefixes(0)) pkt |= space.dst_prefix(p);
    auto inv = b.shortest_plus_reachability(
        pkt, std::min<DeviceId>(1, static_cast<DeviceId>(
                                       topo.device_count() - 1)),
        0, 2);
    inv.faults.any_k = 2;

    std::cout << spec.name;
    for (std::size_t pad = spec.name.size(); pad < 12; ++pad) std::cout << ' ';
    for (const bool reuse : {true, false}) {
      dpvnet::BuildOptions opts;
      opts.max_scenes = scene_cap;
      opts.scene_reuse = reuse;
      dpvnet::BuildStats stats;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        (void)dpvnet::build_dpvnet(topo, inv, opts, &stats);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s (%zu enum)",
                      format_duration(secs).c_str(),
                      stats.scenes_enumerated);
        std::cout << buf << "  ";
      } catch (const Error&) {
        std::cout << "scene-cap     ";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
